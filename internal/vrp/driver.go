package vrp

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"vrp/internal/callgraph"
	"vrp/internal/dom"
	"vrp/internal/freq"
	"vrp/internal/ir"
	"vrp/internal/telemetry"
	"vrp/internal/vrange"
)

// The analysis driver runs the §3.7 interprocedural fixpoint as a
// parallel, incremental, work-skipping schedule:
//
//   - Each pass walks the call graph condensation in topological *waves*
//     (callgraph.Graph.Waves). SCCs within one wave are pairwise
//     call-independent, so their functions are analyzed concurrently on a
//     bounded worker pool; mutually recursive functions (one SCC) are
//     analyzed sequentially inside their task, in call order.
//   - Before a function runs, its interprocedural inputs — the merged
//     formal-parameter values and the return ranges of its known callees —
//     are frozen into a funcInputs snapshot. The engine reads only the
//     snapshot, never live shared state, which is what makes wave
//     parallelism race-free by construction.
//   - The snapshot is fingerprinted (vrange.Hasher). If a function's input
//     vector is bit-identical to the one of its previous engine run, the
//     run is skipped and the prior FuncResult reused: the engine is a
//     deterministic function of its inputs, so skipping provably cannot
//     change any output bit. On fixpoints that converge early, later
//     passes skip almost everything (Stats.FuncsSkipped).
//
// Determinism: task outputs go to per-function slots, merges iterate in
// fixed index order, and stats are merged with atomics — so Workers: 8 is
// bit-identical to Workers: 1, and Stats.SubOps/ExprEvals stay exact.

// funcInputs freezes one function's interprocedural inputs for one engine
// run (or one skip decision).
type funcInputs struct {
	params []vrange.Value            // merged formal-parameter values
	rets   map[*ir.Func]vrange.Value // return range of every known callee
	vec    []vrange.Value            // canonical vector: params, then callee returns in callee-index order
	hash   uint64                    // vrange.Hasher over vec
}

// param returns the value of formal #i; a formal no caller has supplied is
// ⊤ (the merge of nothing — optimistic, as in paramValue).
func (in *funcInputs) param(i int) vrange.Value {
	if i >= 0 && i < len(in.params) {
		return in.params[i]
	}
	return vrange.TopValue()
}

// ret returns the frozen return range of a known callee.
func (in *funcInputs) ret(callee *ir.Func) vrange.Value {
	if v, ok := in.rets[callee]; ok {
		return v
	}
	return vrange.BottomValue()
}

// statCounters accumulates engine statistics; tasks fold local copies into
// the driver's shared instance with atomics.
type statCounters struct {
	exprEvals     int64
	phiEvals      int64
	flowVisits    int64
	derivedLoops  int64
	failedDerives int64
	subOps        int64
	funcsAnalyzed int64
	funcsSkipped  int64
	funcsSpliced  int64
	funcsDegraded int64
}

func (s *statCounters) addAtomic(l *statCounters) {
	atomic.AddInt64(&s.exprEvals, l.exprEvals)
	atomic.AddInt64(&s.phiEvals, l.phiEvals)
	atomic.AddInt64(&s.flowVisits, l.flowVisits)
	atomic.AddInt64(&s.derivedLoops, l.derivedLoops)
	atomic.AddInt64(&s.failedDerives, l.failedDerives)
	atomic.AddInt64(&s.subOps, l.subOps)
	atomic.AddInt64(&s.funcsAnalyzed, l.funcsAnalyzed)
	atomic.AddInt64(&s.funcsSkipped, l.funcsSkipped)
	atomic.AddInt64(&s.funcsSpliced, l.funcsSpliced)
	atomic.AddInt64(&s.funcsDegraded, l.funcsDegraded)
}

type driver struct {
	prog    *ir.Program
	cfg     Config
	cg      *callgraph.Graph
	ip      *interproc
	workers int
	// internHint pre-sizes each worker's cons table: live interned values
	// track the instruction count (≈1.25× in practice), and a pre-sized
	// table skips the allocate-and-rehash growth ladder that otherwise
	// runs on every analysis. Divided by the worker count — a parallel
	// schedule spreads the population — but never below one growth step's
	// worth, so the estimate erring small costs one doubling, not many.
	internHint int
	ctx        context.Context

	results []*FuncResult    // function index → latest FuncResult
	prevIn  [][]vrange.Value // function index → input vector of the last engine run (nil: never ran)
	prevFP  []uint64         // fingerprint of prevIn

	// poisoned marks functions whose engine panicked or ran out of step
	// budget: their results are the degraded ⊥/heuristic fallback and
	// they are quarantined for the remaining passes (the degraded
	// contribution is already a fixpoint). Like results/prevIn, each slot
	// is touched only by the task that owns the function's SCC, so wave
	// parallelism stays race-free.
	poisoned []bool

	// diags collects diagnostics in per-function slots (index = function
	// index) so the final Diagnostics slice is deterministic for every
	// worker count: concatenated in function-index order, per-function in
	// pass order.
	diags [][]Diagnostic

	// sccFuncs orders each SCC's members by callOrder position, so
	// mutually recursive functions are analyzed callers-roughly-first
	// exactly as the classic sequential driver did.
	sccFuncs [][]int

	// tables holds one persistent hash-cons table per worker slot (nil
	// until the slot first runs, or forever when interning is disabled).
	// Each wave spawns at most one goroutine per slot and hands it the
	// slot's table; the WaitGroup barrier between waves (and passes) gives
	// the happens-before for this epoch hand-off, so a table is never
	// touched concurrently while its intern, memo, and arena state stay
	// warm across the whole analysis. Per-worker tables replace the old
	// per-SCC tables: workers stop rebuilding cold tables for every small
	// SCC they steal, and the table count is bounded by the pool size
	// instead of the program's SCC count. Values interned in different
	// slots carry different ids for equal content; that only weakens the
	// id short-circuit to a structural compare, never correctness.
	tables []*vrange.Interner

	// scratch holds one recycled engine allocation pool per function
	// (dominator structures plus zeroed-on-reuse working arrays), created
	// lazily under the same ownership discipline as interners: one task
	// per function per wave, barriers between passes.
	scratch []*engineScratch

	// bodyEnc/bodyFPs lazily cache each function's canonical body
	// encoding and fingerprint for Config.FuncStore keys (nil slices when
	// no store is configured). Slots follow the per-function ownership
	// discipline of results/prevIn: one task per function per wave, wave
	// barriers between fills and later reads.
	bodyEnc  [][]byte
	bodyFPs  []uint64
	configFP uint64

	// rec is the run's telemetry recorder, nil when disabled. Counters
	// and events go into per-function slots (owned by the task analyzing
	// the function, like results and diags), so enabled telemetry is
	// bit-identical across worker counts; wall-clock durations are the
	// only nondeterministic fields.
	rec *telemetry.Recorder

	// Non-convergence demotion accounting (filled single-threaded by
	// demoteUnconverged): ⊤ cells demoted to ⊥, and range-certain branch
	// predictions invalidated by the demotion and re-derived from
	// heuristics (per function in staleCertainFn, by function index).
	demotedTop     int64
	staleCertain   int64
	staleCertainFn []int

	pass      int // current 0-based pass, for diagnostics
	stats     statCounters
	changed   atomic.Bool
	cancelled atomic.Bool
}

func newDriver(p *ir.Program, cfg Config) *driver {
	cgSpan := cfg.Trace.Start(cfg.TraceParent, "driver", "callgraph")
	cg := callgraph.Build(p)
	if cfg.Trace != nil {
		cfg.Trace.Annotate(cgSpan, "funcs", strconv.Itoa(cg.NumFuncs()))
		cfg.Trace.Annotate(cgSpan, "sccs", strconv.Itoa(len(cg.SCCs)))
		cfg.Trace.End(cgSpan)
	}
	n := cg.NumFuncs()
	d := &driver{
		prog:     p,
		cfg:      cfg,
		cg:       cg,
		ip:       newInterproc(p, cfg, cg),
		workers:  cfg.Workers,
		results:  make([]*FuncResult, n),
		prevIn:   make([][]vrange.Value, n),
		prevFP:   make([]uint64, n),
		poisoned: make([]bool, n),
		diags:    make([][]Diagnostic, n),
		rec:      cfg.Telemetry,
	}
	d.staleCertainFn = make([]int, n)
	d.scratch = make([]*engineScratch, n)
	if cfg.FuncStore != nil {
		d.bodyEnc = make([][]byte, n)
		d.bodyFPs = make([]uint64, n)
		d.configFP = configFingerprint(cfg)
	}
	if d.rec != nil {
		names := make([]string, n)
		for i, f := range cg.Funcs {
			names[i] = f.Name
		}
		d.rec.Begin(names)
	}
	if d.workers <= 0 {
		d.workers = runtime.GOMAXPROCS(0)
	}
	d.tables = make([]*vrange.Interner, d.workers)
	d.internHint = p.NumInstrs() + p.NumInstrs()/4
	if d.workers > 1 {
		d.internHint /= d.workers
	}
	pos := make([]int, n)
	for i, f := range callOrder(p) {
		pos[cg.Index[f]] = i
	}
	d.sccFuncs = make([][]int, len(cg.SCCs))
	for s, members := range cg.SCCs {
		ms := append([]int(nil), members...)
		sort.Slice(ms, func(a, b int) bool { return pos[ms[a]] < pos[ms[b]] })
		d.sccFuncs[s] = ms
	}
	return d
}

// run drives the outer fixpoint to convergence (or MaxPasses, or
// cancellation). A cancelled run returns a typed *AnalysisError carrying
// the partial stats; a run that exhausts MaxPasses without converging
// demotes every surviving optimistic ⊤ value to ⊥ (optimism is only sound
// at a fixed point) and records a non-convergence diagnostic per affected
// function.
func (d *driver) run(ctx context.Context) (*Result, error) {
	d.ctx = ctx
	res := &Result{Prog: d.prog, Funcs: make(map[*ir.Func]*FuncResult, len(d.prog.Funcs))}
	passes := d.cfg.MaxPasses
	if !d.cfg.Interprocedural || passes < 1 {
		passes = 1
	}
	for pass := 0; pass < passes; pass++ {
		if ctx.Err() != nil {
			d.cancelled.Store(true)
			break
		}
		d.pass = pass
		d.ip.beginPass(pass)
		res.Stats.Passes++
		d.changed.Store(false)
		var passStart int64
		if d.rec != nil {
			passStart = d.rec.Now()
		}
		var passSpan telemetry.SpanID = telemetry.NoSpan
		if d.cfg.Trace != nil {
			passSpan = d.cfg.Trace.Start(d.cfg.TraceParent, "driver", "pass "+strconv.Itoa(pass))
		}
		for wi, wave := range d.cg.Waves {
			if d.cancelled.Load() || ctx.Err() != nil {
				d.cancelled.Store(true)
				break
			}
			var waveStart int64
			if d.rec != nil {
				waveStart = d.rec.Now()
			}
			var waveSpan telemetry.SpanID = telemetry.NoSpan
			if d.cfg.Trace != nil {
				waveSpan = d.cfg.Trace.Start(passSpan, "driver", "wave "+strconv.Itoa(wi))
			}
			d.runWave(wi, wave, waveSpan)
			d.cfg.Trace.End(waveSpan)
			if d.rec != nil {
				d.rec.EmitDriver(telemetry.Event{
					Name: "wave " + strconv.Itoa(wi), Cat: "wave", Ph: "X",
					Pass: pass, Wave: wi, Func: -1,
					Args:  map[string]string{"sccs": strconv.Itoa(len(wave))},
					Start: waveStart, Dur: d.rec.Now() - waveStart,
				})
			}
		}
		if d.cfg.Trace != nil {
			d.cfg.Trace.Annotate(passSpan, "changed", strconv.FormatBool(d.changed.Load()))
			d.cfg.Trace.End(passSpan)
		}
		if d.rec != nil {
			d.rec.EmitDriver(telemetry.Event{
				Name: "pass " + strconv.Itoa(pass), Cat: "pass", Ph: "X",
				Pass: pass, Wave: -1, Func: -1,
				Args:  map[string]string{"changed": strconv.FormatBool(d.changed.Load())},
				Start: passStart, Dur: d.rec.Now() - passStart,
			})
			d.rec.EndPass(passStart)
		}
		if d.cancelled.Load() || !d.changed.Load() {
			break
		}
	}
	d.fillStats(&res.Stats)
	if d.cancelled.Load() {
		diags := append(d.collectDiags(), Diagnostic{
			Kind: DiagCancelled,
			SCC:  -1,
			Pass: d.pass,
			Msg:  fmt.Sprintf("analysis cancelled: %v", ctx.Err()),
		})
		return nil, &AnalysisError{Err: ctx.Err(), Stats: res.Stats, Diagnostics: diags}
	}
	res.Stats.Converged = !d.changed.Load()
	if !res.Stats.Converged {
		d.demoteUnconverged(res.Stats.Passes)
		res.Stats.StaleCertain = d.staleCertain
	}
	for i, f := range d.cg.Funcs {
		res.Funcs[f] = d.results[i]
	}
	res.Diagnostics = d.collectDiags()
	d.finishTelemetry(res, passes)
	d.releaseTables()
	return res, nil
}

// finishTelemetry attaches the aggregated snapshot to the result: diag
// instant events, the interprocedural boundary-drop count, and the three
// histograms (range-set size, range span, per-function pass counts) that
// need IR-level context the telemetry package does not depend on.
func (d *driver) finishTelemetry(res *Result, maxPasses int) {
	if d.rec == nil {
		return
	}
	for fi, ds := range d.diags {
		for _, dg := range ds {
			d.rec.EmitFunc(fi, telemetry.Event{
				Name: "diag " + dg.Kind.String(), Cat: "diag", Ph: "i",
				Pass: dg.Pass, Wave: -1, Func: fi,
				Args:  map[string]string{"kind": dg.Kind.String()},
				Start: d.rec.Now(),
			})
		}
	}
	snap := d.rec.Snapshot()
	snap.BoundaryDrops = d.ip.drops.Load()
	for _, it := range d.tables {
		if it == nil {
			continue
		}
		snap.InternLive += int64(it.Live())
		snap.InternArenaBytes += it.ArenaBytes()
		snap.InternEvictions += it.Evictions()
	}

	setSize := telemetry.NewHistogram("range-set-size", "⊤", "⊥", "∅", "1", "2", "3", "4", "5+")
	span := telemetry.NewHistogram("range-span", "point", "≤8", "≤64", "≤512", "≤4096", ">4096", "symbolic")
	for _, fr := range d.results {
		if fr == nil {
			continue
		}
		for _, v := range fr.Val {
			observeValue(setSize, span, v)
		}
	}
	snap.RangeSetSize = setSize
	snap.RangeSpan = span

	labels := make([]string, maxPasses+1)
	for i := range labels {
		labels[i] = strconv.Itoa(i)
	}
	passRuns := telemetry.NewHistogram("pass-runs-per-func", labels...)
	for _, fm := range snap.Funcs {
		passRuns.Add(int(fm.Runs))
	}
	snap.PassRuns = passRuns

	q := d.buildQuality(snap)
	snap.Quality = q
	res.Quality = q
	res.Telemetry = snap
}

// qualityClassBucket maps a ValueClass to its index in
// telemetry.QualityClassLabels (point, narrow, wide, symbolic, top,
// bottom, infeasible).
func qualityClassBucket(c vrange.ValueClass) int {
	switch c {
	case vrange.ClassPoint:
		return 0
	case vrange.ClassNarrow:
		return 1
	case vrange.ClassWide:
		return 2
	case vrange.ClassSymbolic:
		return 3
	case vrange.ClassTop:
		return 4
	case vrange.ClassBottom:
		return 5
	}
	return 6 // ClassInfeasible
}

// buildQuality assembles the prediction-quality digest from the final
// results. It runs single-threaded after the fixpoint (and after the
// non-convergence demotion), reads only final state, and consults
// Config.Evidence off the hot path — so the digest is bit-identical for
// every worker count and costs nothing when telemetry is off.
func (d *driver) buildQuality(snap *telemetry.Snapshot) *telemetry.Quality {
	q := telemetry.NewQuality()
	var widthSum float64
	var widthN int64
	for fi, f := range d.cg.Funcs {
		fr := d.results[fi]
		if fr == nil {
			continue
		}
		fq := telemetry.FuncQuality{Func: f.Name}
		for _, v := range fr.Val {
			c, w := vrange.Classify(v)
			q.Classes.Add(qualityClassBucket(c))
			fq.Cells++
			switch c {
			case vrange.ClassPoint:
				fq.Point++
			case vrange.ClassNarrow:
				fq.Narrow++
			case vrange.ClassWide:
				fq.Wide++
			case vrange.ClassSymbolic:
				fq.Symbolic++
			case vrange.ClassTop:
				fq.Top++
			case vrange.ClassBottom:
				fq.Bottom++
			case vrange.ClassInfeasible:
				fq.Infeasible++
			}
			if c == vrange.ClassPoint || c == vrange.ClassNarrow || c == vrange.ClassWide {
				q.Width.Add(telemetry.WidthBucket(w))
				widthSum += math.Log2(float64(w) + 1)
				widthN++
			}
		}
		var score float64
		for _, b := range f.Blocks {
			t := b.Terminator()
			if t == nil || t.Op != ir.OpBr {
				continue
			}
			p, ok := fr.BranchProb[t]
			src := fr.BranchSource[t]
			if !ok {
				p, src = 0.5, ByDefault
			}
			q.Branches++
			fq.Branches++
			q.Confidence.Add(telemetry.ConfidenceBucket(p))
			switch src {
			case ByRange:
				q.Evidence["range"]++
				fq.Range++
				if p == 0 || p == 1 {
					q.Certain++
					fq.Certain++
					score += 1.0
				} else {
					score += 0.7
				}
			case ByHeuristic:
				fq.Heuristic++
				score += 0.4
				if d.cfg.Evidence == nil {
					q.Evidence["heuristic"]++
					break
				}
				evs := d.cfg.Evidence(f, t)
				if len(evs) == 0 {
					q.Evidence["uniform"]++
					break
				}
				for _, ev := range evs {
					q.Evidence[ev.Name]++
				}
				if len(evs) >= 2 {
					q.Evidence["dempster-shafer"]++
				}
			default:
				q.Evidence["default"]++
				fq.Default++
			}
		}
		fq.StaleCertain = int64(d.staleCertainFn[fi])
		if fq.Branches > 0 {
			fq.Score = score / float64(fq.Branches)
		}
		q.Funcs = append(q.Funcs, fq)
	}
	q.Loss["widen"] = snap.Totals.Widens
	q.Loss["recursion-pin"] = d.ip.recWidens.Load()
	q.Loss["demotion"] = d.demotedTop
	q.Loss["phi-hull"] = snap.Totals.PhiHulls
	// assert-tighten counts precision *gained* (the ledger's negative
	// entry); it is stored positive so metric counters stay monotone.
	q.Loss["assert-tighten"] = snap.Totals.AssertTightens
	q.StaleCertain = d.staleCertain
	if q.Branches > 0 {
		q.CertainRatio = float64(q.Certain) / float64(q.Branches)
	}
	if widthN > 0 {
		q.MeanLog2Width = widthSum / float64(widthN)
	}
	return q
}

// observeValue buckets one final register value into the range-set-size
// and range-span histograms.
func observeValue(setSize, span *telemetry.Histogram, v vrange.Value) {
	switch {
	case v.IsTop():
		setSize.Add(0)
		return
	case v.IsBottom():
		setSize.Add(1)
		return
	case v.IsInfeasible():
		setSize.Add(2)
		return
	}
	setSize.Add(2 + len(v.Ranges)) // "1" is bucket 3

	width, symbolic := int64(0), false
	for _, r := range v.Ranges {
		w, ok := r.Hi.Diff(r.Lo)
		if !ok {
			symbolic = true
			break
		}
		if w > width {
			width = w
		}
	}
	switch {
	case symbolic:
		span.Add(6)
	case width == 0:
		span.Add(0)
	case width <= 8:
		span.Add(1)
	case width <= 64:
		span.Add(2)
	case width <= 512:
		span.Add(3)
	case width <= 4096:
		span.Add(4)
	default:
		span.Add(5)
	}
}

func (d *driver) fillStats(s *Stats) {
	s.ExprEvals = d.stats.exprEvals
	s.PhiEvals = d.stats.phiEvals
	s.FlowVisits = d.stats.flowVisits
	s.DerivedLoops = d.stats.derivedLoops
	s.FailedDerives = d.stats.failedDerives
	s.SubOps = d.stats.subOps
	s.FuncsAnalyzed = d.stats.funcsAnalyzed
	s.FuncsSkipped = d.stats.funcsSkipped
	s.FuncsSpliced = d.stats.funcsSpliced
	s.FuncsDegraded = d.stats.funcsDegraded
	s.RecWidens = d.ip.recWidens.Load()
}

// collectDiags flattens the per-function diagnostic slots in
// function-index order — the same order for every worker count.
func (d *driver) collectDiags() []Diagnostic {
	var out []Diagnostic
	for _, ds := range d.diags {
		out = append(out, ds...)
	}
	return out
}

// demoteUnconverged applies the non-convergence contract: any ⊤ a
// function still reports after MaxPasses is an optimistic assumption that
// was never validated, so it is demoted to ⊥ (Wegman–Zadeck optimism is
// only sound at a fixed point) and the function gets a DiagNonConvergence
// diagnostic. Branch probabilities in demoted functions DO need patching:
// the final engine run computed them from ranges that were still moving,
// so a range-certain P ∈ {0, 1} there is an unvalidated claim that one
// side never runs. redoStalePredictions re-derives those from heuristic
// evidence only and re-solves the function's edge frequencies.
func (d *driver) demoteUnconverged(passes int) {
	for fi, fr := range d.results {
		if fr == nil {
			continue
		}
		demoted := 0
		for j, v := range fr.Val {
			if v.IsTop() {
				fr.Val[j] = vrange.DemoteTop(v)
				demoted++
			}
		}
		if demoted > 0 {
			stale := d.redoStalePredictions(fi, fr)
			d.demotedTop += int64(demoted)
			d.staleCertain += int64(stale)
			msg := fmt.Sprintf("fixpoint not reached after %d pass(es): %d optimistic ⊤ value(s) demoted to ⊥",
				passes, demoted)
			if stale > 0 {
				msg += fmt.Sprintf("; %d stale range-certain prediction(s) re-derived from heuristics", stale)
			}
			d.diags[fi] = append(d.diags[fi], Diagnostic{
				Kind: DiagNonConvergence,
				Func: fr.Fn.Name,
				SCC:  d.cg.SCCID[fi],
				Pass: d.pass,
				Msg:  msg,
			})
		}
	}
}

// redoStalePredictions replaces every range-certain (P ∈ {0, 1},
// Source == ByRange) prediction in a demoted function with the heuristic
// fallback: certainty derived from ranges that never reached a fixpoint
// is not evidence that a branch side is dead. Softer range predictions
// are kept — they degrade gracefully — but certainty is all-or-nothing.
// When any prediction changes, the function's edge frequencies are
// re-solved from the patched probabilities so downstream consumers stay
// consistent with what is now claimed. Returns the number of patched
// predictions (also recorded per function for the quality snapshot).
func (d *driver) redoStalePredictions(fi int, fr *FuncResult) int {
	f := fr.Fn
	stale := 0
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t == nil || t.Op != ir.OpBr {
			continue
		}
		p, ok := fr.BranchProb[t]
		if !ok || fr.BranchSource[t] != ByRange || (p != 0 && p != 1) {
			continue
		}
		np := 0.5
		if d.cfg.Fallback != nil {
			np = d.cfg.Fallback(f, t)
		}
		fr.BranchProb[t] = np
		fr.BranchSource[t] = ByHeuristic
		stale++
	}
	if stale == 0 {
		return 0
	}
	tree := dom.New(f)
	loops := dom.FindLoops(f, tree)
	sol := freq.Compute(f, tree, loops, func(br *ir.Instr) (float64, bool) {
		p, ok := fr.BranchProb[br]
		return p, ok
	})
	for i, v := range sol.Edge {
		if v > d.cfg.MaxFreq {
			sol.Edge[i] = d.cfg.MaxFreq
		}
	}
	fr.EdgeFreq = sol.Edge
	d.staleCertainFn[fi] = stale
	return stale
}

// runWave analyzes every SCC of one wave, concurrently when the pool and
// the wave allow it. waveSpan parents the per-SCC engine/splice spans;
// each worker slot draws its own trace lane so concurrent engine runs
// render on separate rows.
func (d *driver) runWave(wi int, wave []int, waveSpan telemetry.SpanID) {
	nw := d.workers
	if nw > len(wave) {
		nw = len(wave)
	}
	if nw <= 1 {
		it := d.table(0)
		for _, scc := range wave {
			if d.cancelled.Load() {
				return
			}
			d.runSCC(wi, scc, it, waveSpan, 1)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(nw)
	for w := 0; w < nw; w++ {
		// Resolve the slot's table on the driver goroutine (lazy creation
		// must not race); the barrier below ends the slot's ownership.
		it := d.table(w)
		lane := int32(w + 1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(wave) || d.cancelled.Load() {
					return
				}
				d.runSCC(wi, wave[i], it, waveSpan, lane)
			}
		}()
	}
	wg.Wait()
}

// internPools recycles warm cons tables across analyses. A finished run's
// tables go back to the pool and the next Analyze of a similar program
// starts with its values and memo entries already resident — the steady
// re-analysis loop (vrpd re-running on every change) then interns almost
// entirely by table hit, paying neither construction (≈1.5MB of zeroed
// slots per run) nor first-touch misses. Two safety rules:
//
//   - Pools are keyed by the full vrange.Config: memo entries replay
//     results and stats deltas recorded under one configuration and would
//     be silently wrong under another. Config is a small comparable
//     struct, so it is its own map key.
//   - A pooled table is never Reset: Results retain arena-backed Values,
//     so recycling slabs while any previous Result is alive would corrupt
//     it. Growth across unlike programs is bounded instead by dropping
//     tables whose live population exceeds pooledTableMaxLive (the pool
//     itself is GC-clearable, so idle tables do not pin memory forever).
var internPools sync.Map // vrange.Config → *sync.Pool of *vrange.Interner

const pooledTableMaxLive = 1 << 16

func internPool(cfg vrange.Config) *sync.Pool {
	if p, ok := internPools.Load(cfg); ok {
		return p.(*sync.Pool)
	}
	p, _ := internPools.LoadOrStore(cfg, &sync.Pool{})
	return p.(*sync.Pool)
}

// ResetInternPools drops every pooled cons table. Benchmarks call it when
// they need cold-table counters (first-run hit/miss splits, per-program
// arena footprints) rather than the steady-state warm behavior.
func ResetInternPools() {
	internPools.Range(func(k, _ any) bool {
		internPools.Delete(k)
		return true
	})
}

// table returns worker slot w's persistent interner, creating it on first
// use; nil when interning is disabled.
func (d *driver) table(w int) *vrange.Interner {
	if d.cfg.Range.DisableIntern {
		return nil
	}
	if d.tables[w] == nil {
		if it, _ := internPool(d.cfg.Range).Get().(*vrange.Interner); it != nil {
			d.tables[w] = it
		} else {
			d.tables[w] = vrange.NewInternerSized(d.internHint)
		}
	}
	return d.tables[w]
}

// releaseTables hands the run's warm tables back to the config-keyed pool.
// Must run after finishTelemetry (which reads the tables' gauges).
func (d *driver) releaseTables() {
	if d.cfg.Range.DisableIntern {
		return
	}
	pool := internPool(d.cfg.Range)
	for i, it := range d.tables {
		if it == nil {
			continue
		}
		d.tables[i] = nil
		if it.Live() <= pooledTableMaxLive {
			pool.Put(it)
		}
	}
}

// runSCC analyzes one SCC's functions sequentially (mutual recursion needs
// each member to observe the previous member's update within the pass),
// with a per-task calc so sub-operation counts merge exactly. Each engine
// run is panic-isolated: a panic (or an exhausted step budget) degrades
// that one function to the ⊥/heuristic fallback and quarantines it,
// instead of killing the process from a worker goroutine.
func (d *driver) runSCC(wi, scc int, it *vrange.Interner, waveSpan telemetry.SpanID, lane int32) {
	var local statCounters
	changed := false
	for _, fi := range d.sccFuncs[scc] {
		if d.poisoned[fi] {
			continue // quarantined: degraded result is already a fixpoint
		}
		if d.cancelled.Load() {
			break
		}
		if d.ctx != nil && d.ctx.Err() != nil {
			d.cancelled.Store(true)
			break
		}
		calc := vrange.NewCalcWith(d.cfg.Range, it)
		in := d.computeInputs(fi, calc)
		if !d.cfg.noSkip && d.results[fi] != nil && d.prevIn[fi] != nil &&
			in.hash == d.prevFP[fi] && bitEqualVec(in.vec, d.prevIn[fi]) {
			// Clean: the previous run saw bit-identical inputs, so a re-run
			// would reproduce the stored result and table updates exactly.
			local.funcsSkipped++
			local.subOps += calc.SubOps
			if d.rec != nil {
				d.rec.Skip(fi, d.pass, wi)
			}
			continue
		}
		// Cross-request store: a hit with a confirmed key (same body, same
		// callee binding, bit-equal inputs, same config) replays a prior
		// run's outputs — by the same determinism argument as the skip
		// above, a fresh engine run would reproduce them bit for bit. The
		// interprocedural update and the effort counters are replayed too,
		// so downstream passes and reported Stats match a cold run exactly.
		var sKey *FuncKey
		if d.cfg.FuncStore != nil {
			sKey = d.funcKey(fi, in)
			if sf, ok := d.cfg.FuncStore.Lookup(sKey); ok {
				var spliceSpan telemetry.SpanID = telemetry.NoSpan
				if d.cfg.Trace != nil {
					spliceSpan = d.cfg.Trace.StartLane(waveSpan, lane, "splice", d.cg.Funcs[fi].Name)
				}
				if fr, bf, ok := d.spliceStored(fi, sf); ok {
					d.results[fi] = fr
					if d.ip.update(fi, fr.Val, bf, calc) {
						changed = true
					}
					d.prevIn[fi] = in.vec
					d.prevFP[fi] = in.hash
					local.funcsAnalyzed++
					local.funcsSpliced++
					local.exprEvals += sf.ExprEvals
					local.phiEvals += sf.PhiEvals
					local.flowVisits += sf.FlowVisits
					local.derivedLoops += sf.DerivedLoops
					local.failedDerives += sf.FailedDerives
					local.subOps += calc.SubOps + sf.SubOps
					d.cfg.Trace.End(spliceSpan)
					continue
				}
				// Confirmed lookup that failed reconstruction: the engine
				// runs below; close the splice span so the trace shows the
				// attempt without claiming the time.
				d.cfg.Trace.Annotate(spliceSpan, "outcome", "fallthrough")
				d.cfg.Trace.End(spliceSpan)
			}
		}
		subOps0 := calc.SubOps
		var rm *telemetry.RunMetrics
		var t0 int64
		if d.rec != nil {
			rm = d.rec.StartRun()
			t0 = d.rec.Now()
		}
		var engSpan telemetry.SpanID = telemetry.NoSpan
		if d.cfg.Trace != nil {
			engSpan = d.cfg.Trace.StartLane(waveSpan, lane, "engine", d.cg.Funcs[fi].Name)
		}
		eng, panicked := d.runEngine(fi, calc, in, rm)
		endRun := func(outcome string) {
			if d.cfg.Trace != nil {
				d.cfg.Trace.Annotate(engSpan, "outcome", outcome)
				if eng != nil {
					d.cfg.Trace.Annotate(engSpan, "steps", fmt.Sprint(eng.steps))
				}
				d.cfg.Trace.End(engSpan)
			}
			if d.rec == nil {
				return
			}
			if eng != nil { // nil after a panic: the engine (and its stats) were discarded
				rm.DeriveHits = eng.stats.DerivedLoops
				rm.DeriveMiss = eng.stats.FailedDerives
				rm.Steps = eng.steps
			}
			rm.AddWidens(calc.Widens)
			rm.AddLattice(telemetry.LatticeCounters{
				InternHits:    calc.InternHits,
				InternMiss:    calc.InternMisses,
				MemoHits:      calc.MemoHits,
				MemoMisses:    calc.MemoMisses,
				ConfirmSkips:  calc.ConfirmSkips,
				MergeMemoHits: calc.MergeMemoHits,
				MergeMemoMiss: calc.MergeMemoMisses,
			})
			d.rec.EndRun(fi, d.pass, wi, rm, t0, outcome)
		}
		if panicked != nil {
			d.degradeFunc(fi, calc, &local, &changed, Diagnostic{
				Kind:       DiagPanic,
				Func:       d.cg.Funcs[fi].Name,
				SCC:        scc,
				Pass:       d.pass,
				Msg:        fmt.Sprintf("engine panicked: %v", panicked),
				PanicValue: panicked,
			})
			local.subOps += calc.SubOps
			endRun("degraded:panic")
			continue
		}
		switch eng.abort {
		case abortCancelled:
			endRun("cancelled")
			d.cancelled.Store(true)
			d.stats.addAtomic(&local)
			if changed {
				d.changed.Store(true)
			}
			return
		case abortStepBudget:
			d.degradeFunc(fi, calc, &local, &changed, Diagnostic{
				Kind: DiagStepBudget,
				Func: d.cg.Funcs[fi].Name,
				SCC:  scc,
				Pass: d.pass,
				Msg: fmt.Sprintf("engine exceeded MaxEngineSteps=%d after %d steps; result degraded to ⊥",
					d.cfg.MaxEngineSteps, eng.steps),
			})
			// The aborted engine's partial work still happened; count it so
			// Stats stay an honest account of effort spent.
			local.exprEvals += eng.stats.ExprEvals
			local.phiEvals += eng.stats.PhiEvals
			local.flowVisits += eng.stats.FlowVisits
			local.derivedLoops += eng.stats.DerivedLoops
			local.failedDerives += eng.stats.FailedDerives
			local.subOps += calc.SubOps
			endRun("degraded:step-budget")
			continue
		}
		d.results[fi] = eng.result()
		if sKey != nil {
			// Record before ip.update so SubOps covers the engine alone; the
			// splice path re-executes the update live and counts its own.
			d.cfg.FuncStore.Store(sKey.Detach(),
				encodeStored(d.cg.Funcs[fi], d.results[fi], eng.blkFreq, eng.stats, calc.SubOps-subOps0))
		}
		if d.ip.update(fi, eng.val, eng.blockFreq, eng.calc) {
			changed = true
		}
		d.prevIn[fi] = in.vec
		d.prevFP[fi] = in.hash
		local.funcsAnalyzed++
		local.exprEvals += eng.stats.ExprEvals
		local.phiEvals += eng.stats.PhiEvals
		local.flowVisits += eng.stats.FlowVisits
		local.derivedLoops += eng.stats.DerivedLoops
		local.failedDerives += eng.stats.FailedDerives
		local.subOps += calc.SubOps
		endRun("ok")
		eng.recycle()
	}
	d.stats.addAtomic(&local)
	if changed {
		d.changed.Store(true)
	}
}

// runEngine runs one function's engine inside a recover barrier. On panic
// it returns (nil, recovered-value); the partially mutated engine is
// discarded (rm keeps whatever the run recorded up to the panic). When
// telemetry is on, the run carries pprof goroutine labels so CPU profiles
// attribute samples to the function/pass/wave under analysis.
func (d *driver) runEngine(fi int, calc *vrange.Calc, in *funcInputs, rm *telemetry.RunMetrics) (eng *engine, panicked any) {
	defer func() {
		if r := recover(); r != nil {
			eng, panicked = nil, r
		}
	}()
	run := func() {
		sc := d.scratch[fi]
		if sc == nil {
			sc = newEngineScratch(d.cg.Funcs[fi])
			d.scratch[fi] = sc
		}
		eng = newEngine(d.ctx, d.cg.Funcs[fi], d.cfg, calc, d.prog, in, rm, sc)
		eng.run()
	}
	if rm != nil {
		ctx := d.ctx
		if ctx == nil {
			ctx = context.Background()
		}
		pprof.Do(ctx, pprof.Labels(
			"vrp_func", d.cg.Funcs[fi].Name,
			"vrp_pass", strconv.Itoa(d.pass),
		), func(context.Context) { run() })
	} else {
		run()
	}
	return eng, nil
}

// degradeFunc replaces fi's result with the ⊥/heuristic fallback, folds
// the degraded values into the interprocedural tables (callers must see ⊥,
// not a stale optimistic range), quarantines the function, and records the
// diagnostic.
func (d *driver) degradeFunc(fi int, calc *vrange.Calc, local *statCounters, changed *bool, diag Diagnostic) {
	f := d.cg.Funcs[fi]
	fr, blkFreq := degradedResult(f, d.cfg)
	d.results[fi] = fr
	d.poisoned[fi] = true
	d.prevIn[fi] = nil
	bf := func(b *ir.Block) float64 {
		if b == f.Entry {
			return 1
		}
		s := blkFreq[b.ID]
		if s > d.cfg.MaxFreq {
			return d.cfg.MaxFreq
		}
		return s
	}
	if d.ip.update(fi, fr.Val, bf, calc) {
		*changed = true
	}
	d.diags[fi] = append(d.diags[fi], diag)
	local.funcsAnalyzed++
	local.funcsDegraded++
}

// computeInputs snapshots fi's interprocedural inputs and fingerprints
// them. Merge sub-operations accrue to calc.
func (d *driver) computeInputs(fi int, calc *vrange.Calc) *funcInputs {
	f := d.cg.Funcs[fi]
	callees := d.cg.Callees[fi]
	in := &funcInputs{
		params: make([]vrange.Value, len(f.Params)),
		vec:    make([]vrange.Value, 0, len(f.Params)+len(callees)),
	}
	for i := range in.params {
		in.params[i] = d.ip.paramValue(fi, i, calc)
	}
	in.vec = append(in.vec, in.params...)
	if len(callees) > 0 {
		in.rets = make(map[*ir.Func]vrange.Value, len(callees))
		for _, ci := range callees {
			rv := d.ip.returnValue(ci)
			in.rets[d.cg.Funcs[ci]] = rv
			in.vec = append(in.vec, rv)
		}
	}
	in.hash = vrange.HashValues(in.vec)
	return in
}

// bitEqualVec confirms a fingerprint match exactly, making hash collisions
// harmless.
func bitEqualVec(a, b []vrange.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].BitEqual(b[i]) {
			return false
		}
	}
	return true
}
