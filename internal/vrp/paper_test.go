package vrp

import (
	"math"
	"testing"

	"vrp/internal/ir"
	"vrp/internal/irgen"
	"vrp/internal/parser"
	"vrp/internal/sem"
	"vrp/internal/ssaform"
)

// compile builds an SSA program from source for tests.
func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := parser.Parse("test.mini", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := sem.Check(prog); err != nil {
		t.Fatalf("sem: %v", err)
	}
	p, err := irgen.Build(prog)
	if err != nil {
		t.Fatalf("irgen: %v", err)
	}
	if err := ssaform.Build(p); err != nil {
		t.Fatalf("ssa: %v", err)
	}
	return p
}

func analyze(t *testing.T, src string, cfg Config) *Result {
	t.Helper()
	p := compile(t, src)
	res, err := Analyze(p, cfg)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return res
}

// paperExample is Figure 2 of the paper.
const paperExample = `
func main() {
	var y = 0;
	for (var x = 0; x < 10; x++) {
		if (x > 7) { y = 1; } else { y = x; }
		if (y == 1) {
			print(y); // Block A
		}
	}
}
`

// TestPaperExample reproduces Figure 4: branch probabilities 91%, 20%, 30%.
func TestPaperExample(t *testing.T) {
	res := analyze(t, paperExample, DefaultConfig())
	probs := branchProbsInOrder(res)
	if len(probs) != 3 {
		t.Fatalf("expected 3 conditional branches, got %d: %v", len(probs), probs)
	}
	want := []float64{10.0 / 11.0, 0.2, 0.3} // x<10, x>7, y==1
	for i, w := range want {
		if math.Abs(probs[i]-w) > 0.005 {
			t.Errorf("branch %d: predicted %.4f, paper says %.4f", i, probs[i], w)
		}
	}
	for _, br := range res.Branches() {
		if br.Source != ByRange {
			t.Errorf("branch %s predicted by %v, want range", br.Instr, br.Source)
		}
	}
}

// branchProbsInOrder returns true-edge probabilities in block order of main.
func branchProbsInOrder(res *Result) []float64 {
	var out []float64
	for _, br := range res.Branches() {
		if br.Fn.Name == "main" {
			out = append(out, br.Prob)
		}
	}
	return out
}
