package vrp

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"vrp/internal/ir"
	"vrp/internal/vrange"
)

// The per-function result store extends the driver's within-run dirty-set
// skipping (driver.go) across analysis runs: Patterson's fixpoint is
// per-procedure over the call graph, so one engine run is a deterministic
// function of exactly three things — the function's IR body, the frozen
// interprocedural input snapshot, and the configuration. A store entry
// keys on all three and replays the run's outputs (values, frequencies,
// branch probabilities, effort counters), making a request that edits one
// function of a large program re-analyze only its dirty cone while every
// clean function is spliced from the store, bit-identical to a cold run.
//
// Collision discipline mirrors the interner's (vrange/intern.go): the
// 64-bit fingerprints only locate a bucket; every hit is confirmed
// against the stored key material (canonical body bytes, callee-name
// binding, bit-equal input values) before anything is served. A
// fingerprint collision is counted by the implementation and treated as
// a miss, never unified.
//
// Two subtleties the key construction must (and does) handle:
//
//   - The engine resolves callees by name, but the driver's input vector
//     orders callee returns by program function index — an ordering the
//     body alone does not determine. The key therefore records the
//     callee-name list alongside the input values; confirmation checks
//     names, so the same body compiled into a differently-ordered
//     program can never alias another entry's inputs positionally.
//   - Source positions are excluded from the body encoding: a one-line
//     edit shifts every later function's positions, and including them
//     would invalidate the whole store on each edit. Spliced predictions
//     take positions from the request's own IR.

// FuncStore is the cross-request per-function result store consulted by
// the driver when Config.FuncStore is set. Implementations must be safe
// for concurrent use and must confirm the full key (FuncKey.SameKey)
// before reporting a hit — fingerprint equality alone is not a hit.
// Entries must only be shared between runs with an identical Config
// (ConfigFP guards the comparable fields; the Fallback function cannot
// be fingerprinted, so callers with custom fallbacks must not share a
// store across them).
type FuncStore interface {
	// Lookup returns the stored result for key, or false. Implementations
	// must not retain key.
	Lookup(key *FuncKey) (*StoredFunc, bool)
	// Store records sf under key. The driver passes a detached key and
	// record (no aliasing into live analysis state); implementations may
	// retain both.
	Store(key *FuncKey, sf *StoredFunc)
}

// FuncKey identifies one function-level analysis result: the canonical
// body encoding, the interprocedural input snapshot bound to callee
// names, and the configuration fingerprint.
type FuncKey struct {
	BodyFP   uint64 // fingerprint of Body
	InputFP  uint64 // fingerprint of Callees+Inputs
	ConfigFP uint64 // fingerprint of the engine-relevant Config fields

	Body    []byte         // canonical position-free body encoding (EncodeFuncBody)
	Callees []string       // callee names in input-vector order: Inputs[len(params)+i] is Callees[i]'s return
	Inputs  []vrange.Value // formal-parameter merges, then callee returns
}

// SameKey reports full key equality: fingerprints, body bytes, callee
// binding and bit-identical input values. This is the confirm step that
// makes fingerprint collisions harmless.
func (k *FuncKey) SameKey(o *FuncKey) bool {
	if k.BodyFP != o.BodyFP || k.InputFP != o.InputFP || k.ConfigFP != o.ConfigFP {
		return false
	}
	if !bytes.Equal(k.Body, o.Body) {
		return false
	}
	if len(k.Callees) != len(o.Callees) {
		return false
	}
	for i := range k.Callees {
		if k.Callees[i] != o.Callees[i] {
			return false
		}
	}
	return bitEqualVec(k.Inputs, o.Inputs)
}

// Detach returns a copy safe to retain beyond the producing analysis:
// input values get fresh Ranges arrays (the originals may alias arena
// slabs recycled by a later run). Body and Callees are immutable after
// construction and are shared.
func (k *FuncKey) Detach() *FuncKey {
	c := *k
	c.Inputs = make([]vrange.Value, len(k.Inputs))
	for i, v := range k.Inputs {
		c.Inputs[i] = v.Detach()
	}
	return &c
}

// StoredBranch is one conditional branch's prediction, addressed by the
// instruction's ordinal in a deterministic walk of the function (blocks
// in order, instructions in block order).
type StoredBranch struct {
	Ord    int32
	Prob   float64
	Source PredictionSource
}

// StoredFunc is one engine run's portable output: everything the driver
// needs to splice the function into a later analysis without re-running
// the engine, plus the run's effort counters so warm Stats replay
// bit-identical to a cold run.
type StoredFunc struct {
	Vals     []vrange.Value // per register, detached
	EdgeFreq []float64      // per Edge.ID
	BlkFreq  []float64      // per Block.ID (pre-clamp; splice re-applies the MaxFreq clamp)
	Branches []StoredBranch
	Derived  []int32 // ordinals of φs whose value came from a §3.6 derivation

	// Engine effort replayed into the splicing run's statCounters.
	// SubOps covers only the engine's own sub-operations: the input
	// snapshot and interprocedural update are re-executed live on splice
	// and account for their own.
	ExprEvals     int64
	PhiEvals      int64
	FlowVisits    int64
	DerivedLoops  int64
	FailedDerives int64
	SubOps        int64
}

// EncodeFuncBody renders f's analysis-relevant structure into canonical
// bytes: opcodes, registers, constants, φ/call arguments, CFG shape
// (blocks, edge endpoints and kinds, successor/predecessor edge order)
// and, per call, the callee name plus whether the program resolves it
// (an unresolved callee evaluates to ⊥, so resolvability is part of the
// transfer function). Source positions and variable names are excluded
// on purpose — they do not influence any analysis output bit.
func EncodeFuncBody(f *ir.Func, prog *ir.Program) []byte {
	// Pre-size roughly: a dozen varints per instruction.
	buf := make([]byte, 0, 16*f.NumInstrs()+64)
	u := func(v uint64) { buf = binary.AppendUvarint(buf, v) }
	i64 := func(v int64) { buf = binary.AppendVarint(buf, v) }
	str := func(s string) { u(uint64(len(s))); buf = append(buf, s...) }

	u(uint64(f.NumRegs))
	u(uint64(len(f.Params)))
	for _, p := range f.Params {
		u(uint64(p))
	}
	u(uint64(f.Entry.ID))
	u(uint64(len(f.Edges)))
	for _, e := range f.Edges {
		u(uint64(e.From.ID))
		u(uint64(e.To.ID))
		u(uint64(e.Kind))
	}
	u(uint64(len(f.Blocks)))
	for _, b := range f.Blocks {
		u(uint64(b.ID))
		u(uint64(len(b.Succs)))
		for _, e := range b.Succs {
			u(uint64(e.ID))
		}
		u(uint64(len(b.Preds)))
		for _, e := range b.Preds {
			u(uint64(e.ID))
		}
		u(uint64(len(b.Instrs)))
		for _, in := range b.Instrs {
			u(uint64(in.Op))
			u(uint64(in.Dst))
			u(uint64(in.A))
			u(uint64(in.B))
			u(uint64(in.Arr))
			i64(in.Const)
			u(uint64(in.BinOp))
			i64(int64(in.ArgIndex))
			u(uint64(in.Parent))
			u(uint64(len(in.Args)))
			for _, a := range in.Args {
				u(uint64(a))
			}
			if in.Op == ir.OpCall {
				str(in.Callee)
				resolved := uint64(0)
				if prog != nil && prog.ByName[in.Callee] != nil {
					resolved = 1
				}
				u(resolved)
			}
		}
	}
	return buf
}

// configFingerprint digests the Config fields that influence analysis
// output bits. Workers, Telemetry and Trace/TraceParent are excluded
// (bit-identical by contract — observers never feed back into the
// lattice); a custom Fallback is marked but cannot be distinguished
// from another custom Fallback — see the FuncStore contract.
func configFingerprint(cfg Config) uint64 {
	h := vrange.NewHasher()
	h.AddBytes([]byte(fmt.Sprintf("%#v", cfg.Range)))
	flags := uint64(0)
	if cfg.Derivation {
		flags |= 1
	}
	if cfg.Interprocedural {
		flags |= 2
	}
	if cfg.FlowFirst {
		flags |= 4
	}
	if cfg.Fallback != nil {
		flags |= 8
	}
	if cfg.noSkip {
		flags |= 16
	}
	h.AddWord(flags)
	h.AddWord(uint64(cfg.MaxPasses))
	h.AddWord(uint64(cfg.RecWidenAfter))
	h.AddWord(uint64(cfg.MaxEvals))
	h.AddWord(uint64(cfg.MaxEngineSteps))
	h.AddWord(math.Float64bits(cfg.FreqEpsilon))
	h.AddWord(math.Float64bits(cfg.MaxFreq))
	return h.Sum()
}

// bodyKey returns fi's canonical body encoding and fingerprint, computed
// once per driver and cached. Slot ownership follows the driver's
// per-function discipline (one task per function per wave, barriers
// between waves), so lazy fill is race-free.
func (d *driver) bodyKey(fi int) ([]byte, uint64) {
	if d.bodyEnc[fi] == nil {
		d.bodyEnc[fi] = EncodeFuncBody(d.cg.Funcs[fi], d.prog)
		d.bodyFPs[fi] = vrange.HashBytes(d.bodyEnc[fi])
	}
	return d.bodyEnc[fi], d.bodyFPs[fi]
}

// funcKey assembles fi's store key for the input snapshot in. The input
// fingerprint binds callee names to their positions, so positional
// aliasing across differently-ordered programs is impossible.
func (d *driver) funcKey(fi int, in *funcInputs) *FuncKey {
	body, bodyFP := d.bodyKey(fi)
	callees := d.cg.Callees[fi]
	names := make([]string, len(callees))
	h := vrange.NewHasher()
	for i, ci := range callees {
		names[i] = d.cg.Funcs[ci].Name
		h.AddBytes([]byte(names[i]))
	}
	for _, v := range in.vec {
		h.Add(v)
	}
	return &FuncKey{
		BodyFP:   bodyFP,
		InputFP:  h.Sum(),
		ConfigFP: d.configFP,
		Body:     body,
		Callees:  names,
		Inputs:   in.vec,
	}
}

// encodeStored builds the portable record of one successful engine run.
// Values are detached: the engine's arrays alias recycled scratch and
// arena storage, and demoteUnconverged may later rewrite fr.Val in
// place; a stored record must be immune to both.
func encodeStored(f *ir.Func, fr *FuncResult, blkFreq []float64, st Stats, subOps int64) *StoredFunc {
	sf := &StoredFunc{
		Vals:          make([]vrange.Value, len(fr.Val)),
		EdgeFreq:      append([]float64(nil), fr.EdgeFreq...),
		BlkFreq:       append([]float64(nil), blkFreq...),
		ExprEvals:     st.ExprEvals,
		PhiEvals:      st.PhiEvals,
		FlowVisits:    st.FlowVisits,
		DerivedLoops:  st.DerivedLoops,
		FailedDerives: st.FailedDerives,
		SubOps:        subOps,
	}
	for i, v := range fr.Val {
		sf.Vals[i] = v.Detach()
	}
	ord := int32(0)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if p, ok := fr.BranchProb[in]; ok {
				sf.Branches = append(sf.Branches, StoredBranch{Ord: ord, Prob: p, Source: fr.BranchSource[in]})
			}
			if fr.Derived[in] {
				sf.Derived = append(sf.Derived, ord)
			}
			ord++
		}
	}
	return sf
}

// spliceStored reconstructs a FuncResult (and the blockFreq closure
// ip.update needs) from a stored record, against the current request's
// own IR. Defensive length/ordinal checks turn any shape mismatch into
// a miss — with body confirmation they cannot fire, but a store bug must
// degrade to a fresh engine run, never to corrupt output.
func (d *driver) spliceStored(fi int, sf *StoredFunc) (*FuncResult, func(*ir.Block) float64, bool) {
	f := d.cg.Funcs[fi]
	if len(sf.Vals) != f.NumRegs || len(sf.EdgeFreq) != len(f.Edges) || len(sf.BlkFreq) != len(f.Blocks) {
		return nil, nil, false
	}
	n := int32(f.NumInstrs())
	for _, br := range sf.Branches {
		if br.Ord < 0 || br.Ord >= n {
			return nil, nil, false
		}
	}
	for _, o := range sf.Derived {
		if o < 0 || o >= n {
			return nil, nil, false
		}
	}
	fr := &FuncResult{
		Fn:           f,
		Val:          append([]vrange.Value(nil), sf.Vals...),
		EdgeFreq:     append([]float64(nil), sf.EdgeFreq...),
		BranchProb:   make(map[*ir.Instr]float64, len(sf.Branches)),
		BranchSource: make(map[*ir.Instr]PredictionSource, len(sf.Branches)),
		Derived:      make(map[*ir.Instr]bool, len(sf.Derived)),
	}
	bi, di := 0, 0
	ord := int32(0)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for bi < len(sf.Branches) && sf.Branches[bi].Ord == ord {
				fr.BranchProb[in] = sf.Branches[bi].Prob
				fr.BranchSource[in] = sf.Branches[bi].Source
				bi++
			}
			for di < len(sf.Derived) && sf.Derived[di] == ord {
				fr.Derived[in] = true
				di++
			}
			ord++
		}
	}
	blk := sf.BlkFreq
	bf := func(b *ir.Block) float64 {
		if b == f.Entry {
			return 1
		}
		s := blk[b.ID]
		if s > d.cfg.MaxFreq {
			return d.cfg.MaxFreq
		}
		return s
	}
	return fr, bf, true
}
