package vrp

import (
	"testing"

	"vrp/internal/freq"
)

// TestFreqFactoredOncePerFunctionAcrossPasses pins the driver-level
// factor-once guarantee: a multi-pass analysis builds exactly one freq
// factorization per function (the engineScratch's Solver, constructed on
// the first engine run and reused by every later pass), while the solve
// count grows with the passes — re-solves change only the right-hand
// side, never the factored elimination structure.
func TestFreqFactoredOncePerFunctionAcrossPasses(t *testing.T) {
	p := compileSrc(t, "reuse.mini", `
func work(n) {
	var s = 0;
	for (var i = 0; i < n; i += 1) {
		if (s < 40) { s += i; } else { s -= 1; }
	}
	return s;
}
func main() {
	var t = 0;
	for (var k = 0; k < 8; k += 1) {
		t += work(k + 3);
	}
	print(t);
}`)
	f0, s0 := freq.Stats()
	cfg := DefaultConfig()
	cfg.Workers = 1
	res, err := Analyze(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f1, s1 := freq.Stats()
	if res.Stats.Passes < 2 {
		t.Fatalf("want a multi-pass run to make reuse observable, got %d pass(es)", res.Stats.Passes)
	}
	factored, solved := f1-f0, s1-s0
	if want := int64(len(p.Funcs)); factored != want {
		t.Fatalf("analysis with %d passes factored %d times, want exactly one per function (%d)",
			res.Stats.Passes, factored, want)
	}
	if solved <= factored {
		t.Fatalf("got %d solves for %d factorizations; multi-pass re-solves should dominate", solved, factored)
	}
}
