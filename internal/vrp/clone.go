package vrp

import (
	"fmt"
	"sort"
	"strings"

	"vrp/internal/ir"
)

// Procedure cloning (§3.7): "duplicating a critical procedure which is
// not inlined but which is called in two (or more) significantly
// different contexts so that each copy may be optimized in a different
// way. ... Since the calling context has a large impact on the branching
// behavior, this leads to substantially more accurate predictions."
//
// Call sites are grouped by context signature — the tuple of
// syntactically constant actuals (constants reached through copy chains).
// A function called from at least two groups, where at least one group
// pins an argument to a constant, is cloned per group and the call sites
// are retargeted. The transformation runs before analysis and
// interpretation alike, so every downstream consumer sees the same
// program.

// CloneOptions bounds the transformation.
type CloneOptions struct {
	// MaxClonesPerFunc bounds the groups cloned for one function.
	MaxClonesPerFunc int
	// MaxFuncInstrs skips functions too large to duplicate profitably.
	MaxFuncInstrs int
}

// DefaultCloneOptions mirrors a conservative compiler setting.
func DefaultCloneOptions() CloneOptions {
	return CloneOptions{MaxClonesPerFunc: 4, MaxFuncInstrs: 400}
}

// CloneReport describes what CloneProcedures did.
type CloneReport struct {
	// Clones maps an original function name to its clone names.
	Clones map[string][]string
	// RetargetedCalls counts rewritten call sites.
	RetargetedCalls int
}

// CloneProcedures transforms the program in place, duplicating functions
// whose call sites disagree on constant arguments.
func CloneProcedures(p *ir.Program, opts CloneOptions) *CloneReport {
	if opts.MaxClonesPerFunc <= 0 {
		opts.MaxClonesPerFunc = 4
	}
	if opts.MaxFuncInstrs <= 0 {
		opts.MaxFuncInstrs = 400
	}
	rep := &CloneReport{Clones: map[string][]string{}}

	// Gather call sites per callee.
	type site struct {
		caller *ir.Func
		in     *ir.Instr
		sig    string
		pinned bool // at least one constant actual
	}
	sites := map[string][]*site{}
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpCall {
					continue
				}
				s := &site{caller: f, in: in}
				s.sig, s.pinned = callSignature(f, in)
				sites[in.Callee] = append(sites[in.Callee], s)
			}
		}
	}

	// Deterministic function order.
	names := make([]string, 0, len(sites))
	for n := range sites {
		names = append(names, n)
	}
	sort.Strings(names)

	for _, name := range names {
		callee := p.ByName[name]
		if callee == nil || callee.Name == "main" {
			continue
		}
		if callee.NumInstrs() > opts.MaxFuncInstrs {
			continue
		}
		ss := sites[name]
		groups := map[string][]*site{}
		for _, s := range ss {
			groups[s.sig] = append(groups[s.sig], s)
		}
		if len(groups) < 2 {
			continue // a single context: specialisation buys nothing
		}
		// Only clone for groups that pin at least one argument.
		sigs := make([]string, 0, len(groups))
		for sig, g := range groups {
			if g[0].pinned {
				sigs = append(sigs, sig)
			}
		}
		sort.Strings(sigs)
		if len(sigs) > opts.MaxClonesPerFunc {
			sigs = sigs[:opts.MaxClonesPerFunc]
		}
		// The first pinned group keeps the original function; the rest
		// get clones. (Unpinned groups keep calling the original.)
		for i, sig := range sigs {
			if i == 0 {
				continue
			}
			cloneName := fmt.Sprintf("%s$clone%d", name, i)
			nf := callee.Clone(cloneName)
			p.Funcs = append(p.Funcs, nf)
			p.ByName[cloneName] = nf
			rep.Clones[name] = append(rep.Clones[name], cloneName)
			for _, s := range groups[sig] {
				s.in.Callee = cloneName
				rep.RetargetedCalls++
			}
		}
	}
	return rep
}

// callSignature renders the constant shape of a call's actuals:
// "k=5,_,k=16" for f(5, x, 16).
func callSignature(f *ir.Func, call *ir.Instr) (string, bool) {
	var parts []string
	pinned := false
	for _, a := range call.Args {
		if c, ok := constReg(f, a); ok {
			parts = append(parts, fmt.Sprintf("k=%d", c))
			pinned = true
		} else {
			parts = append(parts, "_")
		}
	}
	return strings.Join(parts, ","), pinned
}

// constReg resolves a register to a syntactic constant through copy and
// assertion chains.
func constReg(f *ir.Func, r ir.Reg) (int64, bool) {
	for i := 0; i < 64; i++ {
		d := f.Defs[r]
		if d == nil {
			return 0, false
		}
		switch d.Op {
		case ir.OpConst:
			return d.Const, true
		case ir.OpCopy:
			r = d.A
		case ir.OpAssert:
			r = d.Parent
		default:
			return 0, false
		}
	}
	return 0, false
}
