// Package vrp implements the paper's primary contribution: value range
// propagation over SSA form, producing a branch probability for every
// conditional branch in the program (§3).
//
// The engine is the Wegman–Zadeck two-worklist propagator (FlowWorkList of
// CFG edges + SSAWorkList of def-use edges) extended as §3.3 describes:
// weighted range sets instead of constants, φ evaluation weighted by
// in-edge probabilities, per-edge probabilities instead of executable
// flags, and special handling of loop-carried expressions by derivation
// template matching (§3.6). Interprocedural propagation uses jump
// functions (§3.7): formal parameter values are the weighted merge of
// actual argument ranges across call sites, and return ranges flow back to
// call instructions.
package vrp

import (
	"context"
	"fmt"
	"sort"

	"vrp/internal/ir"
	"vrp/internal/telemetry"
	"vrp/internal/vrange"
)

// FallbackFunc supplies a heuristic probability for the true out-edge of a
// conditional branch whose controlling range is ⊥ (§3.5: "heuristics
// similar to those in [BallLarus93] must be used").
type FallbackFunc func(f *ir.Func, br *ir.Instr) float64

// EvidenceItem names one heuristic that contributed to a fallback
// probability, with the single-heuristic probability it argued for.
type EvidenceItem struct {
	Name string
	Prob float64
}

// EvidenceFunc explains a fallback prediction for the quality telemetry:
// the individual heuristics (by name) that fired on a branch. It is
// consulted only while the driver builds the quality snapshot — never on
// the engine hot path — and only for branches whose probability came from
// Config.Fallback.
type EvidenceFunc func(f *ir.Func, br *ir.Instr) []EvidenceItem

// Config controls an analysis run. The zero value is not useful; start
// from DefaultConfig.
type Config struct {
	Range vrange.Config

	// Derivation enables loop-carried derivation templates (§3.6). When
	// off, loop ranges are found by brute-force propagation ("simply allow
	// the propagation algorithm to determine the value range by executing
	// the loop"), bounded by MaxEvals.
	Derivation bool

	// Interprocedural enables jump functions and return ranges (§3.7).
	Interprocedural bool

	// MaxPasses bounds the outer interprocedural fixpoint.
	MaxPasses int

	// RecWidenAfter enables return/argument widening on recursive call
	// graph cycles: a return range or same-SCC argument slot that is
	// still moving after this many interprocedural passes is pinned, and
	// every subsequent value for it is widened to a single hull range
	// clamped into ±Range.AssumedVarValue. This trades the tail of the
	// descending chain for a guaranteed fixpoint on recursions (such as
	// ackermann) whose argument ranges would otherwise keep shifting
	// until MaxPasses gives up. DefaultConfig sets MaxPasses-2, leaving
	// the first passes exact and widening only stragglers; 0 disables
	// widening entirely.
	RecWidenAfter int

	// MaxEvals is the per-instruction evaluation budget before the engine
	// widens the result to ⊥ — the practical give-up point that keeps
	// brute-force loop execution from dominating runtime.
	MaxEvals int

	// FlowFirst prefers the FlowWorkList when both lists are non-empty;
	// the paper observes this "tends to cause information to be gathered
	// more quickly" (§3.3 step 2).
	FlowFirst bool

	// Fallback predicts ⊥-controlled branches; nil means 0.5.
	Fallback FallbackFunc

	// Evidence attributes fallback predictions to individual heuristics
	// for the quality snapshot (see EvidenceFunc). nil — the default —
	// attributes every heuristic branch to the generic "heuristic" key.
	Evidence EvidenceFunc

	// FreqEpsilon is the relative change threshold under which an edge
	// frequency update is not considered a change (termination control
	// for the frequency feedback around loops).
	FreqEpsilon float64

	// MaxFreq caps edge frequencies (relative to one function entry).
	MaxFreq float64

	// Workers bounds the number of per-function engines running
	// concurrently within one call-graph wave: 0 picks one per available
	// CPU (GOMAXPROCS), 1 is the fully sequential schedule. Results are
	// bit-identical for every setting.
	Workers int

	// MaxEngineSteps bounds the worklist items one engine run may process
	// (0 = unlimited). A function that exhausts the budget has its result
	// degraded to ⊥ with heuristic-only branch probabilities and a
	// DiagStepBudget diagnostic, instead of spinning — the pathological
	// function pays, the rest of the program is analyzed exactly.
	MaxEngineSteps int

	// Ctx optionally carries a cancellation context into Analyze; nil
	// means context.Background(). AnalyzeContext overrides it.
	Ctx context.Context

	// FuncStore, when non-nil, is consulted before every engine run and
	// populated after every successful one: a cross-request per-function
	// result store keyed on (body fingerprint × interprocedural-input
	// fingerprint × config fingerprint) with full-key confirmation on
	// every hit (see store.go). A confirmed hit splices the stored
	// FuncResult instead of re-running the engine — bit-identical to a
	// cold run, including replayed effort Stats. The store must only be
	// shared between runs with an identical Config.
	FuncStore FuncStore

	// Telemetry, when non-nil, collects per-function metrics, trace
	// spans and histograms for the run; the aggregated snapshot is
	// attached to Result.Telemetry. A Recorder serves one analysis run
	// at a time (the driver resets it via Begin). nil — the default —
	// disables collection at zero cost on the engine hot path.
	Telemetry *telemetry.Recorder

	// Trace, when non-nil, receives the run's request-scoped span tree:
	// a "callgraph" span for condensation, one span per fixpoint pass
	// and wave, one per engine run (on the worker's lane) and one per
	// store splice, all parented under TraceParent. Unlike Telemetry,
	// spans carry only wall-clock timings and labels — nothing reads
	// them back, so tracing can never perturb analysis results. nil —
	// the default — disables tracing at zero cost on the hot path.
	Trace *telemetry.Trace

	// TraceParent is the span the driver hangs its spans under (the
	// server's per-request "vrp" phase span); telemetry.NoSpan roots
	// them at the top of the trace.
	TraceParent telemetry.SpanID

	// noSkip disables the driver's dirty-set work skipping (test-only: the
	// skip-soundness tests compare a full re-analysis against the
	// incremental schedule bit for bit).
	noSkip bool

	// testHookEngineRun, when set, is called at the start of every engine
	// run with the function under analysis (test-only: panic and
	// cancellation injection for the failure-path tests).
	testHookEngineRun func(f *ir.Func)
}

// DefaultConfig returns the paper-faithful configuration.
func DefaultConfig() Config {
	return Config{
		Range:           vrange.DefaultConfig(),
		Derivation:      true,
		Interprocedural: true,
		MaxPasses:       8,
		RecWidenAfter:   6, // MaxPasses - 2: exact early passes, widened stragglers
		MaxEvals:        12,
		FlowFirst:       true,
		FreqEpsilon:     1e-4,
		MaxFreq:         1e6,
		TraceParent:     telemetry.NoSpan,
	}
}

// Stats instruments the engine for the paper's Figures 5 and 6.
type Stats struct {
	ExprEvals     int64 // expression evaluations (Figure 5)
	SubOps        int64 // evaluation sub-operations (Figure 6)
	PhiEvals      int64
	FlowVisits    int64
	DerivedLoops  int64
	FailedDerives int64
	Passes        int

	// FuncsAnalyzed counts engine runs across all passes; FuncsSkipped
	// counts the re-analyses the driver's dirty set proved unnecessary
	// (bit-identical interprocedural inputs since the last run).
	FuncsAnalyzed int64
	FuncsSkipped  int64

	// FuncsSpliced counts the subset of FuncsAnalyzed served by splicing
	// a Config.FuncStore entry instead of running the engine (spliced
	// runs replay the stored run's effort into the other counters, so
	// every Stats field except this one matches a cold run bit for bit).
	FuncsSpliced int64

	// Converged reports that the interprocedural fixpoint actually
	// reached a fixed point within MaxPasses. When false, every surviving
	// optimistic ⊤ value has been demoted to ⊥ in the reported results
	// (optimism is only sound at a fixed point) and the affected
	// functions carry DiagNonConvergence diagnostics.
	Converged bool

	// FuncsDegraded counts functions whose engine panicked or exceeded
	// MaxEngineSteps and whose results were replaced by the ⊥/heuristic
	// fallback.
	FuncsDegraded int64

	// RecWidens counts the interprocedural slots (return ranges and
	// same-SCC argument positions) pinned by recursion widening
	// (Config.RecWidenAfter). Zero when the feature is off.
	RecWidens int64

	// StaleCertain counts range-certain (P ∈ {0, 1}) predictions that
	// were invalidated by the non-convergence ⊤→⊥ demotion and re-derived
	// from heuristics. Always 0 on converged runs.
	StaleCertain int64
}

// PredictionSource says how a branch probability was obtained.
type PredictionSource int

// Prediction sources.
const (
	ByRange     PredictionSource = iota // from the variable's value range
	ByHeuristic                         // fallback (controlling range was ⊥)
	ByDefault                           // never evaluated (unreachable or ⊤)
)

func (s PredictionSource) String() string {
	switch s {
	case ByRange:
		return "range"
	case ByHeuristic:
		return "heuristic"
	}
	return "default"
}

// Branch is one conditional branch's prediction.
type Branch struct {
	Fn     *ir.Func
	Instr  *ir.Instr // the OpBr
	Prob   float64   // probability of the true out-edge
	Source PredictionSource
}

// FuncResult holds per-function analysis output.
type FuncResult struct {
	Fn  *ir.Func
	Val []vrange.Value // per register

	// EdgeFreq is the expected executions of each edge per invocation of
	// the function (entry = 1); Edge.ID-indexed.
	EdgeFreq []float64

	// BranchProb maps each OpBr to its true-edge probability.
	BranchProb map[*ir.Instr]float64
	// BranchSource records how each probability was obtained.
	BranchSource map[*ir.Instr]PredictionSource

	// Derived marks the loop-carried φs whose value came from a §3.6
	// derivation template (rather than weighted merging) in the
	// function's final engine run; provenance for ExplainBranch.
	Derived map[*ir.Instr]bool

	// Degraded marks a function whose engine panicked or ran out of step
	// budget: Val is all ⊥ and every branch probability is heuristic.
	Degraded bool
}

// Result is a whole-program analysis result.
type Result struct {
	Prog  *ir.Program
	Funcs map[*ir.Func]*FuncResult
	Stats Stats

	// Diagnostics records every failure-path event of the run
	// (non-convergence demotions, panics, step-budget degradations), in
	// deterministic order: function index, then pass.
	Diagnostics []Diagnostic

	// Telemetry is the aggregated instrumentation snapshot when
	// Config.Telemetry was set, nil otherwise. Everything in it except
	// wall-clock durations is bit-identical across worker counts.
	Telemetry *telemetry.Snapshot

	// Quality is the prediction-quality digest (the same object as
	// Telemetry.Quality) when Config.Telemetry was set, nil otherwise.
	// Fully deterministic across worker counts.
	Quality *telemetry.Quality
}

// Branches returns every conditional branch prediction in deterministic
// order (function order, block order).
func (r *Result) Branches() []Branch {
	var out []Branch
	for _, f := range r.Prog.Funcs {
		fr := r.Funcs[f]
		if fr == nil {
			continue
		}
		for _, b := range f.Blocks {
			t := b.Terminator()
			if t == nil || t.Op != ir.OpBr {
				continue
			}
			p, ok := fr.BranchProb[t]
			src := fr.BranchSource[t]
			if !ok {
				p, src = 0.5, ByDefault
			}
			out = append(out, Branch{Fn: f, Instr: t, Prob: p, Source: src})
		}
	}
	return out
}

// Analyze runs value range propagation over an SSA-form program. The
// interprocedural fixpoint is scheduled by the parallel, incremental
// driver (see driver.go): topological waves over the call graph
// condensation, Config.Workers concurrent per-function engines, and
// dirty-set skipping of functions whose interprocedural inputs did not
// change since their last run. Results are bit-identical for every worker
// count. Cancellation comes from Config.Ctx (nil = background); see
// AnalyzeContext.
func Analyze(p *ir.Program, cfg Config) (*Result, error) {
	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	return AnalyzeContext(ctx, p, cfg)
}

// AnalyzeContext is Analyze under an explicit context. Cancellation is
// observed between functions and, inside a single engine, every few
// hundred worklist steps; a cancelled run returns a typed *AnalysisError
// carrying the partial stats and diagnostics (errors.Is(err,
// context.Canceled) holds). ctx takes precedence over cfg.Ctx.
func AnalyzeContext(ctx context.Context, p *ir.Program, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for _, f := range p.Funcs {
		if !f.SSA {
			return nil, fmt.Errorf("vrp: function %s is not in SSA form", f.Name)
		}
	}
	return newDriver(p, cfg).run(ctx)
}

// callOrder returns functions roughly callers-before-callees starting at
// main, so parameter seeds are available early; unreached functions come
// last in name order. The preorder DFS runs on an explicit stack so deep
// call chains cannot overflow the goroutine stack.
func callOrder(p *ir.Program) []*ir.Func {
	var order []*ir.Func
	seen := map[*ir.Func]bool{}
	// cursor is a suspended scan of one function's instructions.
	type cursor struct {
		f     *ir.Func
		block int
		instr int
	}
	if m := p.Main(); m != nil {
		seen[m] = true
		order = append(order, m)
		stack := []cursor{{f: m}}
		for len(stack) > 0 {
			cur := &stack[len(stack)-1]
			f := cur.f
			pushed := false
		scan:
			for cur.block < len(f.Blocks) {
				b := f.Blocks[cur.block]
				for cur.instr < len(b.Instrs) {
					in := b.Instrs[cur.instr]
					cur.instr++
					if in.Op != ir.OpCall {
						continue
					}
					callee := p.ByName[in.Callee]
					if callee == nil || seen[callee] {
						continue
					}
					// First call of an unseen function: preorder-append it
					// and descend (the parent cursor resumes afterwards).
					seen[callee] = true
					order = append(order, callee)
					stack = append(stack, cursor{f: callee})
					pushed = true
					break scan
				}
				cur.block++
				cur.instr = 0
			}
			if !pushed {
				stack = stack[:len(stack)-1]
			}
		}
	}
	rest := make([]*ir.Func, 0)
	for _, f := range p.Funcs {
		if !seen[f] {
			rest = append(rest, f)
		}
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i].Name < rest[j].Name })
	return append(order, rest...)
}
