// Package vrp implements the paper's primary contribution: value range
// propagation over SSA form, producing a branch probability for every
// conditional branch in the program (§3).
//
// The engine is the Wegman–Zadeck two-worklist propagator (FlowWorkList of
// CFG edges + SSAWorkList of def-use edges) extended as §3.3 describes:
// weighted range sets instead of constants, φ evaluation weighted by
// in-edge probabilities, per-edge probabilities instead of executable
// flags, and special handling of loop-carried expressions by derivation
// template matching (§3.6). Interprocedural propagation uses jump
// functions (§3.7): formal parameter values are the weighted merge of
// actual argument ranges across call sites, and return ranges flow back to
// call instructions.
package vrp

import (
	"fmt"
	"sort"

	"vrp/internal/ir"
	"vrp/internal/vrange"
)

// FallbackFunc supplies a heuristic probability for the true out-edge of a
// conditional branch whose controlling range is ⊥ (§3.5: "heuristics
// similar to those in [BallLarus93] must be used").
type FallbackFunc func(f *ir.Func, br *ir.Instr) float64

// Config controls an analysis run. The zero value is not useful; start
// from DefaultConfig.
type Config struct {
	Range vrange.Config

	// Derivation enables loop-carried derivation templates (§3.6). When
	// off, loop ranges are found by brute-force propagation ("simply allow
	// the propagation algorithm to determine the value range by executing
	// the loop"), bounded by MaxEvals.
	Derivation bool

	// Interprocedural enables jump functions and return ranges (§3.7).
	Interprocedural bool

	// MaxPasses bounds the outer interprocedural fixpoint.
	MaxPasses int

	// MaxEvals is the per-instruction evaluation budget before the engine
	// widens the result to ⊥ — the practical give-up point that keeps
	// brute-force loop execution from dominating runtime.
	MaxEvals int

	// FlowFirst prefers the FlowWorkList when both lists are non-empty;
	// the paper observes this "tends to cause information to be gathered
	// more quickly" (§3.3 step 2).
	FlowFirst bool

	// Fallback predicts ⊥-controlled branches; nil means 0.5.
	Fallback FallbackFunc

	// FreqEpsilon is the relative change threshold under which an edge
	// frequency update is not considered a change (termination control
	// for the frequency feedback around loops).
	FreqEpsilon float64

	// MaxFreq caps edge frequencies (relative to one function entry).
	MaxFreq float64
}

// DefaultConfig returns the paper-faithful configuration.
func DefaultConfig() Config {
	return Config{
		Range:           vrange.DefaultConfig(),
		Derivation:      true,
		Interprocedural: true,
		MaxPasses:       8,
		MaxEvals:        12,
		FlowFirst:       true,
		FreqEpsilon:     1e-4,
		MaxFreq:         1e6,
	}
}

// Stats instruments the engine for the paper's Figures 5 and 6.
type Stats struct {
	ExprEvals     int64 // expression evaluations (Figure 5)
	SubOps        int64 // evaluation sub-operations (Figure 6)
	PhiEvals      int64
	FlowVisits    int64
	DerivedLoops  int64
	FailedDerives int64
	Passes        int
}

// PredictionSource says how a branch probability was obtained.
type PredictionSource int

// Prediction sources.
const (
	ByRange     PredictionSource = iota // from the variable's value range
	ByHeuristic                         // fallback (controlling range was ⊥)
	ByDefault                           // never evaluated (unreachable or ⊤)
)

func (s PredictionSource) String() string {
	switch s {
	case ByRange:
		return "range"
	case ByHeuristic:
		return "heuristic"
	}
	return "default"
}

// Branch is one conditional branch's prediction.
type Branch struct {
	Fn     *ir.Func
	Instr  *ir.Instr // the OpBr
	Prob   float64   // probability of the true out-edge
	Source PredictionSource
}

// FuncResult holds per-function analysis output.
type FuncResult struct {
	Fn  *ir.Func
	Val []vrange.Value // per register

	// EdgeFreq is the expected executions of each edge per invocation of
	// the function (entry = 1); Edge.ID-indexed.
	EdgeFreq []float64

	// BranchProb maps each OpBr to its true-edge probability.
	BranchProb map[*ir.Instr]float64
	// BranchSource records how each probability was obtained.
	BranchSource map[*ir.Instr]PredictionSource
}

// Result is a whole-program analysis result.
type Result struct {
	Prog  *ir.Program
	Funcs map[*ir.Func]*FuncResult
	Stats Stats
}

// Branches returns every conditional branch prediction in deterministic
// order (function order, block order).
func (r *Result) Branches() []Branch {
	var out []Branch
	for _, f := range r.Prog.Funcs {
		fr := r.Funcs[f]
		if fr == nil {
			continue
		}
		for _, b := range f.Blocks {
			t := b.Terminator()
			if t == nil || t.Op != ir.OpBr {
				continue
			}
			p, ok := fr.BranchProb[t]
			src := fr.BranchSource[t]
			if !ok {
				p, src = 0.5, ByDefault
			}
			out = append(out, Branch{Fn: f, Instr: t, Prob: p, Source: src})
		}
	}
	return out
}

// Analyze runs value range propagation over an SSA-form program.
func Analyze(p *ir.Program, cfg Config) (*Result, error) {
	for _, f := range p.Funcs {
		if !f.SSA {
			return nil, fmt.Errorf("vrp: function %s is not in SSA form", f.Name)
		}
	}
	res := &Result{Prog: p, Funcs: map[*ir.Func]*FuncResult{}}
	calc := vrange.NewCalc(cfg.Range)

	ip := newInterproc(p, cfg)
	order := callOrder(p)

	passes := cfg.MaxPasses
	if !cfg.Interprocedural || passes < 1 {
		passes = 1
	}
	for pass := 0; pass < passes; pass++ {
		res.Stats.Passes++
		changed := false
		for _, f := range order {
			eng := newEngine(f, cfg, calc, ip)
			eng.run()
			fr := eng.result()
			res.Funcs[f] = fr
			res.Stats.ExprEvals += eng.stats.ExprEvals
			res.Stats.PhiEvals += eng.stats.PhiEvals
			res.Stats.FlowVisits += eng.stats.FlowVisits
			res.Stats.DerivedLoops += eng.stats.DerivedLoops
			res.Stats.FailedDerives += eng.stats.FailedDerives
			if ip.update(f, eng) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	res.Stats.SubOps = calc.SubOps
	return res, nil
}

// callOrder returns functions roughly callers-before-callees starting at
// main, so parameter seeds are available early; unreached functions come
// last in name order.
func callOrder(p *ir.Program) []*ir.Func {
	var order []*ir.Func
	seen := map[*ir.Func]bool{}
	var visit func(f *ir.Func)
	visit = func(f *ir.Func) {
		if f == nil || seen[f] {
			return
		}
		seen[f] = true
		order = append(order, f)
		// Callees in first-call order.
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall {
					visit(p.ByName[in.Callee])
				}
			}
		}
	}
	visit(p.Main())
	rest := make([]*ir.Func, 0)
	for _, f := range p.Funcs {
		if !seen[f] {
			rest = append(rest, f)
		}
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i].Name < rest[j].Name })
	return append(order, rest...)
}

// ------------------------------------------------------ interprocedural

// interproc holds cross-function state: per-caller jump functions for each
// callee's formals, and return ranges. Formal parameter values are
// recomputed on demand as the weighted merge over callers, so the tables
// converge deterministically across passes.
type interproc struct {
	cfg  Config
	calc *vrange.Calc
	prog *ir.Program

	// args[callee][caller] is the caller's contribution: one merged value
	// per formal, plus the caller's total call frequency into callee.
	args    map[*ir.Func]map[*ir.Func]*callerArgs
	retVals map[*ir.Func]vrange.Value // merged return ranges
}

type callerArgs struct {
	vals []vrange.Value
	w    float64
}

func newInterproc(p *ir.Program, cfg Config) *interproc {
	ip := &interproc{
		cfg:     cfg,
		calc:    vrange.NewCalc(cfg.Range),
		prog:    p,
		args:    map[*ir.Func]map[*ir.Func]*callerArgs{},
		retVals: map[*ir.Func]vrange.Value{},
	}
	for _, f := range p.Funcs {
		ip.args[f] = map[*ir.Func]*callerArgs{}
		if cfg.Interprocedural {
			ip.retVals[f] = vrange.TopValue()
		} else {
			ip.retVals[f] = vrange.BottomValue()
		}
	}
	return ip
}

// paramValue returns the current value of formal #idx of f: the weighted
// merge of the jump functions at the known call sites. With no recorded
// caller yet it is ⊤ in interprocedural mode (optimistic: unreached so
// far), ⊥ otherwise. main's parameters are always ⊥ (program inputs).
func (ip *interproc) paramValue(f *ir.Func, idx int) vrange.Value {
	if !ip.cfg.Interprocedural || f.Name == "main" {
		return vrange.BottomValue()
	}
	callers := ip.args[f]
	if len(callers) == 0 {
		return vrange.TopValue()
	}
	items := make([]vrange.Weighted, 0, len(callers))
	for _, ca := range callers {
		if idx < len(ca.vals) {
			items = append(items, vrange.Weighted{Val: ca.vals[idx], W: ca.w})
		}
	}
	return ip.calc.Merge(items)
}

// returnValue returns the current return range of callee.
func (ip *interproc) returnValue(callee *ir.Func) vrange.Value {
	if v, ok := ip.retVals[callee]; ok {
		return v
	}
	return vrange.BottomValue()
}

// sanitize strips caller-local symbolic bounds from a value crossing a
// function boundary: the representation's ancestor variables are SSA names
// of a single function.
func sanitize(v vrange.Value) vrange.Value {
	if v.Kind() != vrange.Set {
		return v
	}
	for _, r := range v.Ranges {
		if !r.Lo.IsNum() || !r.Hi.IsNum() {
			return vrange.BottomValue()
		}
	}
	return v
}

// update folds one engine run back into the interprocedural tables; it
// reports whether anything lowered (another pass is needed).
func (ip *interproc) update(f *ir.Func, eng *engine) bool {
	if !ip.cfg.Interprocedural {
		return false
	}
	changed := false

	// Return range of f.
	var items []vrange.Weighted
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t == nil || t.Op != ir.OpRet || t.A == ir.None {
			continue
		}
		w := eng.blockFreq(b)
		if w <= 0 {
			continue
		}
		items = append(items, vrange.Weighted{Val: sanitize(eng.val[t.A]), W: w})
	}
	newRet := eng.calc.Merge(items)
	if !newRet.Equal(ip.retVals[f]) {
		ip.retVals[f] = newRet
		changed = true
	}

	// Jump functions: actual argument values at every call site in f,
	// weighted by call-site frequency, merged per callee.
	type argAcc struct {
		items [][]vrange.Weighted
		w     float64
	}
	accs := map[*ir.Func]*argAcc{}
	for _, b := range f.Blocks {
		w := eng.blockFreq(b)
		if w <= 0 {
			continue
		}
		for _, in := range b.Instrs {
			if in.Op != ir.OpCall {
				continue
			}
			callee := eng.prog().ByName[in.Callee]
			if callee == nil {
				continue
			}
			acc := accs[callee]
			if acc == nil {
				acc = &argAcc{items: make([][]vrange.Weighted, len(callee.Params))}
				accs[callee] = acc
			}
			acc.w += w
			for i := range callee.Params {
				var av vrange.Value = vrange.BottomValue()
				if i < len(in.Args) {
					av = sanitize(eng.val[in.Args[i]])
				}
				acc.items[i] = append(acc.items[i], vrange.Weighted{Val: av, W: w})
			}
		}
	}
	for callee, acc := range accs {
		ca := &callerArgs{vals: make([]vrange.Value, len(acc.items)), w: acc.w}
		for i := range acc.items {
			ca.vals[i] = eng.calc.Merge(acc.items[i])
		}
		prev := ip.args[callee][f]
		if prev == nil || !sameArgs(prev, ca) {
			ip.args[callee][f] = ca
			changed = true
		}
	}
	return changed
}

func sameArgs(a, b *callerArgs) bool {
	if len(a.vals) != len(b.vals) {
		return false
	}
	const wEps = 1e-6
	if a.w-b.w > wEps || b.w-a.w > wEps {
		return false
	}
	for i := range a.vals {
		if !a.vals[i].Equal(b.vals[i]) {
			return false
		}
	}
	return true
}
