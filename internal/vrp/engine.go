package vrp

import (
	"context"
	"math"

	"vrp/internal/dom"
	"vrp/internal/freq"
	"vrp/internal/ir"
	"vrp/internal/telemetry"
	"vrp/internal/vrange"
)

// abortReason says why an engine run stopped before its fixed point.
type abortReason int

const (
	abortNone       abortReason = iota
	abortCancelled              // the run's context was cancelled
	abortStepBudget             // Config.MaxEngineSteps exhausted
)

// engine runs the §3.3 worklist algorithm over one function. Its
// interprocedural inputs are frozen into `in` by the driver before the run
// starts, so the engine never reads shared mutable state — engines of
// call-independent functions can run concurrently.
type engine struct {
	f      *ir.Func
	cfg    Config
	calc   *vrange.Calc
	irProg *ir.Program
	in     *funcInputs
	ctx    context.Context

	// tm is this run's telemetry, nil when disabled. Hot-path recording
	// goes through its nil-guarded methods, so the disabled path is a
	// compare-and-skip with zero allocations (see internal/telemetry).
	tm *telemetry.RunMetrics

	steps int64       // worklist items processed by this run
	abort abortReason // set when the run stops before its fixed point

	tree      *dom.Tree
	loops     *dom.LoopInfo
	backEdges map[*ir.Edge]bool

	val      []vrange.Value // per register
	edgeFreq []float64      // per edge ID; solved by the freq package
	blkFreq  []float64      // per block ID
	visited  []bool         // per block ID

	// Per-instruction counters and marks, indexed by Instr.Idx (dense,
	// assigned by BuildDefUse) — flat arrays instead of maps, so the
	// membership tests and budget bumps on the propagation hot path never
	// hash or allocate.
	evalCount     []int // structural changes (widening budget)
	probCount     []int // probability-only changes (churn budget)
	brUpdates     []int // accepted branch probability updates
	derived       []bool
	derivedStrict []bool // constraint-derived with all-nonzero increments
	deriveFailed  []bool
	deriveDeps    map[ir.Reg][]*ir.Instr // value → derived φs consulting it

	branchP   map[*ir.Instr]float64
	branchSrc map[*ir.Instr]PredictionSource

	// Worklists are FIFO queues (head index + slice): breadth-first
	// draining lets the frequency updates of one loop traversal coalesce
	// instead of rippling depth-first through every pending edge.
	// Membership bitsets are indexed by Edge.ID and Instr.Idx.
	flowWL   []*ir.Edge
	flowHead int
	inFlow   []bool
	ssaWL    []*ir.Instr
	ssaHead  int
	inSSA    []bool

	// evalPhi scratch, reused across φ evaluations.
	phiOps   []phiOp
	phiItems []vrange.Weighted

	// sc is the recycled allocation pool this run borrowed its working
	// arrays from; solver and probFn re-solve frequencies without
	// per-solve allocations.
	sc     *engineScratch
	solver *freq.Solver
	probFn freq.BranchProbFunc

	stats Stats
}

// phiOp is one executable φ in-edge: the operand register and edge weight.
type phiOp struct {
	reg ir.Reg
	w   float64
}

// engineScratch holds the per-function allocations that survive across
// engine runs: the dominator structures (the CFG never changes during an
// analysis) and the recycled working arrays. The driver keeps one per
// function under the same ownership discipline as the per-SCC interners —
// a function is analyzed by exactly one task per wave and re-runs are
// ordered by the wave barriers, so reuse is race-free. Arrays that escape
// into the FuncResult (val, edgeFreq, branchP, branchSrc) are NOT here:
// they are allocated fresh per run. A function that degrades (panic or
// step budget) is quarantined and never re-runs, so a half-mutated
// scratch is never observed.
type engineScratch struct {
	tree      *dom.Tree
	loops     *dom.LoopInfo
	backEdges map[*ir.Edge]bool
	solver    *freq.Solver

	blkFreq       []float64
	visited       []bool
	evalCount     []int
	probCount     []int
	brUpdates     []int
	derived       []bool
	derivedStrict []bool
	deriveFailed  []bool
	deriveDeps    map[ir.Reg][]*ir.Instr
	inFlow        []bool
	inSSA         []bool
	flowWL        []*ir.Edge
	ssaWL         []*ir.Instr
	phiOps        []phiOp
	phiItems      []vrange.Weighted

	// Derivation scratch: the walker (with its own recycled stacks) and
	// the init-operand slices of engine.derive.
	dw      walker
	dvItems []vrange.Weighted
	dvRegs  []ir.Reg
	dvBack  []ir.Reg
}

func newEngineScratch(f *ir.Func) *engineScratch {
	n := f.NumInstrs()
	tree := dom.New(f)
	loops := dom.FindLoops(f, tree)
	back := dom.BackEdges(f, tree)
	return &engineScratch{
		tree:          tree,
		loops:         loops,
		backEdges:     back,
		solver:        freq.NewSolver(f, tree, loops, back),
		blkFreq:       make([]float64, len(f.Blocks)),
		visited:       make([]bool, len(f.Blocks)),
		evalCount:     make([]int, n),
		probCount:     make([]int, n),
		brUpdates:     make([]int, n),
		derived:       make([]bool, n),
		derivedStrict: make([]bool, n),
		deriveFailed:  make([]bool, n),
		deriveDeps:    map[ir.Reg][]*ir.Instr{},
		inFlow:        make([]bool, len(f.Edges)),
		inSSA:         make([]bool, n),
		dw:            walker{onPath: make([]bool, f.NumRegs)},
	}
}

// reset zeroes every borrowed array so a fresh run starts from the same
// state a fresh allocation would.
func (sc *engineScratch) reset() {
	clear(sc.blkFreq)
	clear(sc.visited)
	clear(sc.evalCount)
	clear(sc.probCount)
	clear(sc.brUpdates)
	clear(sc.derived)
	clear(sc.derivedStrict)
	clear(sc.deriveFailed)
	clear(sc.deriveDeps)
	clear(sc.inFlow)
	clear(sc.inSSA)
	sc.flowWL = sc.flowWL[:0]
	sc.ssaWL = sc.ssaWL[:0]
	sc.phiOps = sc.phiOps[:0]
	sc.phiItems = sc.phiItems[:0]
	clear(sc.dw.onPath)
}

func newEngine(ctx context.Context, f *ir.Func, cfg Config, calc *vrange.Calc, prog *ir.Program, in *funcInputs, tm *telemetry.RunMetrics, sc *engineScratch) *engine {
	if sc == nil {
		sc = newEngineScratch(f)
	} else {
		sc.reset()
	}
	e := &engine{
		f:             f,
		cfg:           cfg,
		calc:          calc,
		irProg:        prog,
		in:            in,
		ctx:           ctx,
		tm:            tm,
		val:           make([]vrange.Value, f.NumRegs),
		edgeFreq:      make([]float64, len(f.Edges)),
		blkFreq:       sc.blkFreq,
		visited:       sc.visited,
		evalCount:     sc.evalCount,
		probCount:     sc.probCount,
		brUpdates:     sc.brUpdates,
		derived:       sc.derived,
		derivedStrict: sc.derivedStrict,
		deriveFailed:  sc.deriveFailed,
		deriveDeps:    sc.deriveDeps,
		branchP:       map[*ir.Instr]float64{},
		branchSrc:     map[*ir.Instr]PredictionSource{},
		inFlow:        sc.inFlow,
		inSSA:         sc.inSSA,
		flowWL:        sc.flowWL,
		ssaWL:         sc.ssaWL,
		phiOps:        sc.phiOps,
		phiItems:      sc.phiItems,
		sc:            sc,
		solver:        sc.solver,
	}
	for i := range e.val {
		e.val[i] = vrange.TopValue()
	}
	e.tree = sc.tree
	e.loops = sc.loops
	e.backEdges = sc.backEdges
	e.probFn = func(br *ir.Instr) (float64, bool) {
		p, ok := e.branchP[br]
		return p, ok
	}
	return e
}

// recycle hands the run's (possibly grown) worklist and scratch slices
// back to the pool. Call after the run's results have been read; the
// engine must not be used afterwards.
func (e *engine) recycle() {
	sc := e.sc
	sc.flowWL = e.flowWL
	sc.ssaWL = e.ssaWL
	sc.phiOps = e.phiOps
	sc.phiItems = e.phiItems
}

func (e *engine) prog() *ir.Program { return e.irProg }

// blockFreq is the node's expected executions per invocation, from the
// last frequency solve (footnote 1's "sum of the probabilities of the
// edges which lead to the node being executed", with the loop feedback
// solved in closed form).
func (e *engine) blockFreq(b *ir.Block) float64 {
	if b == e.f.Entry {
		return 1
	}
	s := e.blkFreq[b.ID]
	if s > e.cfg.MaxFreq {
		return e.cfg.MaxFreq
	}
	return s
}

// recomputeFreqs re-solves block/edge frequencies after a branch
// probability change, scheduling every materially changed edge. The
// solver's result buffers are copied into the engine's own arrays
// (edgeFreq escapes into the FuncResult; the solver buffers are reused by
// the next solve).
func (e *engine) recomputeFreqs() {
	fr := e.solver.Compute(e.probFn)
	for i, nv := range fr.Edge {
		if nv > e.cfg.MaxFreq {
			nv = e.cfg.MaxFreq
		}
		old := e.edgeFreq[i]
		if math.Abs(nv-old) > e.cfg.FreqEpsilon*math.Max(1, old) {
			e.pushFlow(e.f.Edges[i])
		}
		e.edgeFreq[i] = nv
	}
	copy(e.blkFreq, fr.Block)
}

func (e *engine) pushFlow(ed *ir.Edge) {
	if !e.inFlow[ed.ID] {
		e.inFlow[ed.ID] = true
		e.flowWL = append(e.flowWL, ed)
		e.tm.PushFlow(len(e.flowWL) - e.flowHead)
	}
}

func (e *engine) pushSSA(in *ir.Instr) {
	if !e.inSSA[in.Idx] {
		e.inSSA[in.Idx] = true
		e.ssaWL = append(e.ssaWL, in)
		e.tm.PushSSA(len(e.ssaWL) - e.ssaHead)
	}
}

// compactQueues reclaims queue prefixes once they dominate the slice.
func (e *engine) compactQueues() {
	if e.flowHead > 1024 && e.flowHead*2 > len(e.flowWL) {
		n := copy(e.flowWL, e.flowWL[e.flowHead:])
		e.flowWL = e.flowWL[:n]
		e.flowHead = 0
	}
	if e.ssaHead > 1024 && e.ssaHead*2 > len(e.ssaWL) {
		n := copy(e.ssaWL, e.ssaWL[e.ssaHead:])
		e.ssaWL = e.ssaWL[:n]
		e.ssaHead = 0
	}
}

// pushUses adds the SSA out-edges of a changed definition (and any derived
// φ that consulted the value during derivation).
func (e *engine) pushUses(r ir.Reg) {
	for _, u := range e.f.Uses[r] {
		e.pushSSA(u)
	}
	for _, phi := range e.deriveDeps[r] {
		e.pushSSA(phi)
	}
}

// cancelCheckMask throttles context polls to one per 256 worklist steps:
// frequent enough to stop a pathological function promptly, rare enough
// that the atomic load never shows up in profiles.
const cancelCheckMask = 0xFF

// run executes the algorithm of §3.3 to its fixed point — or stops early,
// setting e.abort, when the context is cancelled or the step budget
// (Config.MaxEngineSteps) runs out. An aborted run's partial state is
// discarded by the driver, which substitutes the degraded ⊥/heuristic
// result.
func (e *engine) run() {
	if e.cfg.testHookEngineRun != nil {
		e.cfg.testHookEngineRun(e.f)
	}
	// Step 1: the entry node is executable with probability 1; evaluate it
	// and seed the FlowWorkList with its out-edges via the first frequency
	// solve.
	e.visitBlock(e.f.Entry)
	e.recomputeFreqs()

	// Step 2: drain the lists, preferring the configured one.
	for e.flowHead < len(e.flowWL) || e.ssaHead < len(e.ssaWL) {
		e.steps++
		if e.cfg.MaxEngineSteps > 0 && e.steps > int64(e.cfg.MaxEngineSteps) {
			e.abort = abortStepBudget
			return
		}
		if e.steps&cancelCheckMask == 0 && e.ctx != nil && e.ctx.Err() != nil {
			e.abort = abortCancelled
			return
		}
		flowAvail := e.flowHead < len(e.flowWL)
		ssaAvail := e.ssaHead < len(e.ssaWL)
		if (e.cfg.FlowFirst && flowAvail) || !ssaAvail {
			ed := e.flowWL[e.flowHead]
			e.flowWL[e.flowHead] = nil
			e.flowHead++
			e.inFlow[ed.ID] = false
			if e.edgeFreq[ed.ID] > 0 {
				e.visitBlock(ed.To) // step 3
			}
			e.compactQueues()
			continue
		}
		in := e.ssaWL[e.ssaHead]
		e.ssaWL[e.ssaHead] = nil
		e.ssaHead++
		e.inSSA[in.Idx] = false
		e.processSSAItem(in) // steps 4–7
		e.compactQueues()
	}
	e.finalize()
}

// visitBlock implements step 3: on first visit evaluate every expression
// in the node, afterwards only the φ-functions; the terminator's out-edge
// probabilities are refreshed either way because the node frequency may
// have changed.
func (e *engine) visitBlock(b *ir.Block) {
	e.stats.FlowVisits++
	first := !e.visited[b.ID]
	e.visited[b.ID] = true
	for _, in := range b.Instrs {
		if first || in.Op == ir.OpPhi {
			e.evalInstr(in)
		}
	}
}

// processSSAItem handles one SSA worklist entry (steps 4–7).
func (e *engine) processSSAItem(in *ir.Instr) {
	if in.Op == ir.OpPhi {
		e.evalInstr(in)
		return
	}
	// Step 6 guard: evaluate only if the node can execute.
	b := in.Block
	if !e.visited[b.ID] {
		return // will be evaluated when a flow edge reaches it
	}
	if b != e.f.Entry && e.blockFreq(b) <= 0 {
		return
	}
	e.evalInstr(in)
}

// setValue records a freshly evaluated result, applying the MaxEvals
// widening backstop, and propagates along SSA edges on change.
func (e *engine) setValue(in *ir.Instr, nv vrange.Value) {
	old := e.val[in.Dst]
	if nv.Equal(old) {
		return
	}
	if !nv.SameShape(old) {
		e.evalCount[in.Idx]++
		if e.evalCount[in.Idx] > e.cfg.MaxEvals {
			e.tm.Widen()
			nv = vrange.BottomValue()
			if nv.Equal(old) {
				return
			}
		}
	} else {
		// Probability-only refinement. The branch-prob → frequency →
		// φ-weight feedback can oscillate without ever changing range
		// structure; a generous churn budget lets genuine refinements
		// settle and then freezes the value near its fixpoint.
		e.probCount[in.Idx]++
		if e.probCount[in.Idx] > probChurnBudget {
			e.val[in.Dst] = nv
			return // keep the latest value, stop propagating the ripple
		}
	}
	e.val[in.Dst] = nv
	e.pushUses(in.Dst)
}

// Budgets bounding the probability-refinement feedback (structure changes
// are bounded separately by Config.MaxEvals).
const (
	probChurnBudget    = 256
	branchUpdateBudget = 256
)

// symVal returns the operand's value, substituting the symbolic point
// range {1[r:r:0]} for ⊥ operands when symbolic ranges are enabled — this
// is how values "specified relative to others" (§3.4) arise.
func (e *engine) symVal(r ir.Reg) vrange.Value {
	v := e.val[r]
	if v.IsBottom() && e.cfg.Range.Symbolic {
		return e.calc.SymbolicVal(e.rootOf(r))
	}
	return v
}

// rootOf chases copies, assertion parents and identity-φs to the
// canonical ancestor register, so that symbolic bounds created from
// different copies or π-refinements of the same runtime value compare
// equal. Assertions are runtime identities (their refinement lives in the
// value table, not in the symbolic name), and a φ whose operands all
// chase back to the φ itself or to one common register — the shape
// assertion-versioning creates at loop headers for unmodified variables —
// is an identity too.
func (e *engine) rootOf(r ir.Reg) ir.Reg {
	for i := 0; i < 64; i++ {
		d := e.f.Defs[r]
		if d == nil {
			return r
		}
		switch d.Op {
		case ir.OpCopy:
			r = d.A
		case ir.OpAssert:
			r = d.Parent
		case ir.OpPhi:
			origin := ir.None
			distinct := true
			for _, a := range d.Args {
				o := e.chaseCopyAssert(a, r)
				if o == r {
					continue // refinement of the φ itself
				}
				if origin == ir.None {
					origin = o
				} else if origin != o {
					distinct = false
					break
				}
			}
			if !distinct || origin == ir.None {
				return r
			}
			r = origin
		default:
			return r
		}
	}
	return r
}

// chaseCopyAssert follows copies and assertion parents only, stopping at
// any other definition (including φs). self short-circuits cycles back to
// the φ being resolved.
func (e *engine) chaseCopyAssert(r, self ir.Reg) ir.Reg {
	for i := 0; i < 64; i++ {
		if r == self {
			return self
		}
		d := e.f.Defs[r]
		if d == nil {
			return r
		}
		switch d.Op {
		case ir.OpCopy:
			r = d.A
		case ir.OpAssert:
			r = d.Parent
		default:
			return r
		}
	}
	return r
}

// evalInstr evaluates one instruction (the "symbolic execution" of §3.2).
func (e *engine) evalInstr(in *ir.Instr) {
	switch in.Op {
	case ir.OpPhi:
		e.evalPhi(in)
		return
	case ir.OpBr, ir.OpJmp:
		e.updateOutEdges(in.Block)
		return
	case ir.OpRet, ir.OpPrint, ir.OpStore:
		return
	}
	e.stats.ExprEvals++
	var nv vrange.Value
	switch in.Op {
	case ir.OpConst:
		nv = e.calc.ConstVal(in.Const)
	case ir.OpParam:
		nv = e.in.param(in.ArgIndex)
	case ir.OpInput, ir.OpLoad, ir.OpAlloc:
		// Loads are the paper's canonical ⊥ producers (§3.5); input() and
		// array references are equally opaque.
		nv = vrange.BottomValue()
	case ir.OpCopy:
		nv = e.symVal(in.A)
	case ir.OpNeg:
		nv = e.calc.Neg(e.val[in.A])
	case ir.OpNot:
		nv = e.calc.Not(e.val[in.A])
	case ir.OpBin:
		a, b := e.symVal(in.A), e.symVal(in.B)
		if in.BinOp.IsComparison() {
			// Correlation-preserving comparison (§3.4): when one side's
			// range is expressed relative to the other side's root value
			// (e.g. j ∈ [0:i:1] compared against i), compare against the
			// symbolic point rather than the root's numeric hull — the
			// uniform-independence model would discard the correlation.
			ra, rb := e.rootOf(in.A), e.rootOf(in.B)
			if refersTo(a, rb) {
				b = e.calc.SymbolicVal(rb)
			} else if refersTo(b, ra) {
				a = e.calc.SymbolicVal(ra)
			}
		}
		nv = e.calc.Apply(in.BinOp, a, b)
	case ir.OpAssert:
		e.tm.Assert()
		other := e.calc.ConstVal(in.Const)
		if in.B != ir.None {
			other = e.symVal(in.B)
		}
		parent := e.val[in.A]
		nv = e.calc.Refine(parent, in.BinOp, other)
		if e.tm != nil && vrange.RefineGain(parent, nv) {
			e.tm.AssertTighten()
		}
	case ir.OpCall:
		callee := e.prog().ByName[in.Callee]
		if callee == nil {
			nv = vrange.BottomValue()
		} else {
			nv = e.in.ret(callee)
		}
	default:
		nv = vrange.BottomValue()
	}
	e.setValue(in, nv)
}

// evalPhi implements steps 4 and 5: loop-carried φs are derived, others
// merge their operands weighted by in-edge probability. The paper's
// footnote 4 short-circuits families of assertions of a common parent.
func (e *engine) evalPhi(phi *ir.Instr) {
	e.stats.PhiEvals++
	b := phi.Block

	hasBack := false
	for _, pe := range b.Preds {
		if e.backEdges[pe] {
			hasBack = true
			break
		}
	}
	if hasBack && e.cfg.Derivation && !e.deriveFailed[phi.Idx] {
		v, st := e.derive(phi)
		switch st {
		case deriveOK:
			if !e.derived[phi.Idx] {
				e.stats.DerivedLoops++
			}
			e.derived[phi.Idx] = true
			e.setValue(phi, v)
			return
		case deriveNotReady:
			// Not enough information yet (e.g. the increment constant's
			// block has not executed). Fall through to the optimistic
			// merge of the executable in-edges so the loop body becomes
			// reachable; derivation is retried when the consulted values
			// lower.
		case deriveFail:
			e.stats.FailedDerives++
			e.deriveFailed[phi.Idx] = true
			// A φ may have derived earlier under transient information
			// (e.g. an increment operand that was still a lone constant)
			// and fail to re-derive once the operand lowers. Clearing the
			// derived mark hands the φ back to merge-based evaluation —
			// leaving it would freeze a stale optimistic value.
			e.derived[phi.Idx] = false
			e.derivedStrict[phi.Idx] = false
		}
	}
	if e.derived[phi.Idx] {
		// Derived expressions are not re-evaluated by merging (§3.3 step
		// 4); value updates happen through re-derivation above.
		return
	}

	// Step 5: executable in-edges only.
	ops := e.phiOps[:0]
	for i, pe := range b.Preds {
		w := e.edgeFreq[pe.ID]
		if w <= 0 {
			continue
		}
		ops = append(ops, phiOp{phi.Args[i], w})
	}
	e.phiOps = ops
	if len(ops) == 0 {
		return // not yet executable: stays ⊤
	}

	// Footnote 4: if every executable operand is an assertion of (or copy
	// of) one common parent, the merge is exactly the parent's range.
	origin := e.assertOrigin(ops[0].reg)
	same := origin != ir.None && origin != phi.Dst
	for _, o := range ops[1:] {
		if e.assertOrigin(o.reg) != origin {
			same = false
			break
		}
	}
	if same && len(ops) > 1 {
		e.tm.PhiMerge()
		e.setValue(phi, e.calc.MergeAssertionFamily(e.val[origin]))
		return
	}

	e.tm.PhiMerge()
	items := e.phiItems[:0]
	for _, o := range ops {
		items = append(items, vrange.Weighted{Val: e.val[o.reg], W: o.w})
	}
	e.phiItems = items
	var nv vrange.Value
	if hasBack {
		// Loop-header φ: weights freeze once the loop's frequencies
		// converge, so the exact-key merge memo hits on every body step.
		nv = e.calc.MergeLoopHeader(items)
	} else {
		nv = e.calc.Merge(items)
	}
	if e.tm != nil && vrange.MergeLoss(nv, items) {
		e.tm.PhiHull()
	}
	e.setValue(phi, nv)
}

// copyRoot chases copy chains only (no assertion unwrapping).
func (e *engine) copyRoot(r ir.Reg) ir.Reg {
	for i := 0; i < 64; i++ {
		d := e.f.Defs[r]
		if d == nil || d.Op != ir.OpCopy {
			return r
		}
		r = d.A
	}
	return r
}

// assertOrigin finds the nearest π-parent of a φ operand: copies are
// transparent, and exactly one assertion level is unwrapped, so that a
// family of complementary assertions maps to its immediate common parent
// (the most refined shared value) rather than to the top of the chain.
func (e *engine) assertOrigin(r ir.Reg) ir.Reg {
	r = e.copyRoot(r)
	d := e.f.Defs[r]
	if d != nil && d.Op == ir.OpAssert {
		return e.copyRoot(d.Parent)
	}
	return r
}

// updateOutEdges re-examines a block's conditional branch (step 7). A
// materially changed probability triggers a whole-function frequency
// re-solve, which schedules every affected flow edge. Jump frequencies
// need no separate handling: the solver owns them.
func (e *engine) updateOutEdges(b *ir.Block) {
	t := b.Terminator()
	if t == nil || t.Op != ir.OpBr {
		return
	}
	p, src, ok := e.branchProb(t)
	if !ok {
		return
	}
	old, had := e.branchP[t]
	e.branchSrc[t] = src
	if had && math.Abs(old-p) <= 1e-9 {
		return
	}
	if e.brUpdates[t.Idx] > branchUpdateBudget {
		e.branchP[t] = p // keep the freshest value, stop re-solving
		return
	}
	e.brUpdates[t.Idx]++
	e.branchP[t] = p
	e.recomputeFreqs()
}

// branchProb determines the probability of taking the branch by examining
// the controlling variable's value range (step 7), falling back to the
// heuristic hook for ⊥.
func (e *engine) branchProb(t *ir.Instr) (float64, PredictionSource, bool) {
	cv := e.val[t.A]
	switch cv.Kind() {
	case vrange.Top:
		return 0, ByDefault, false // not yet evaluated
	case vrange.Bottom:
		return e.fallback(t), ByHeuristic, true
	}
	if cv.IsInfeasible() {
		return 0, ByDefault, false
	}
	p, ok := e.calc.ProbTrue(cv)
	if !ok {
		return e.fallback(t), ByHeuristic, true
	}
	return p, ByRange, true
}

func (e *engine) fallback(t *ir.Instr) float64 {
	if e.cfg.Fallback != nil {
		return e.cfg.Fallback(e.f, t)
	}
	return 0.5
}

// finalize assigns heuristic probabilities to branches that never received
// one (unreachable code or ⊤ conditions left by interprocedural cycles).
func (e *engine) finalize() {
	for _, b := range e.f.Blocks {
		t := b.Terminator()
		if t == nil || t.Op != ir.OpBr {
			continue
		}
		if _, ok := e.branchP[t]; ok {
			continue
		}
		e.branchP[t] = e.fallback(t)
		e.branchSrc[t] = ByDefault
	}
}

func (e *engine) result() *FuncResult {
	derived := make(map[*ir.Instr]bool)
	for _, b := range e.f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpPhi && e.derived[in.Idx] {
				derived[in] = true
			}
		}
	}
	fr := &FuncResult{
		Fn:           e.f,
		Val:          e.val,
		EdgeFreq:     e.edgeFreq,
		BranchProb:   e.branchP,
		BranchSource: e.branchSrc,
		Derived:      derived,
	}
	return fr
}

// refersTo reports whether any bound of the value references register r.
func refersTo(v vrange.Value, r ir.Reg) bool {
	if v.Kind() != vrange.Set {
		return false
	}
	for _, rg := range v.Ranges {
		if rg.Lo.Var == r || rg.Hi.Var == r {
			return true
		}
	}
	return false
}
