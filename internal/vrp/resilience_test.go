package vrp

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"vrp/internal/ir"
	"vrp/internal/vrange"
)

// The failure-path suite: non-convergence demotion, context cancellation,
// panic isolation, and step-budget degradation. Every surviving result
// must be bit-deterministic across worker counts, and the whole file runs
// under -race via `make check` (the driver is parallel by default).

// mutualSrc is a mutually recursive program: even ↔ odd form one SCC, so
// the interprocedural fixpoint genuinely needs multiple passes.
const mutualSrc = `
func even(n) {
	if (n <= 0) { return 1; }
	return odd(n - 1);
}
func odd(n) {
	if (n <= 0) { return 0; }
	return even(n - 1);
}
func main() {
	print(even(input() % 8));
}`

func countTops(res *Result) int {
	tops := 0
	for _, fr := range res.Funcs {
		if fr == nil {
			continue
		}
		for _, v := range fr.Val {
			if v.IsTop() {
				tops++
			}
		}
	}
	return tops
}

func diagsOfKind(ds []Diagnostic, k DiagKind) []Diagnostic {
	var out []Diagnostic
	for _, d := range ds {
		if d.Kind == k {
			out = append(out, d)
		}
	}
	return out
}

// valsEqual compares two per-function value tables bit for bit.
func valsEqual(t *testing.T, label string, prog *ir.Program, a, b *Result) {
	t.Helper()
	for _, f := range prog.Funcs {
		fa, fb := a.Funcs[f], b.Funcs[f]
		if (fa == nil) != (fb == nil) {
			t.Fatalf("%s: %s present in one result only", label, f.Name)
		}
		if fa == nil {
			continue
		}
		if len(fa.Val) != len(fb.Val) {
			t.Fatalf("%s: %s value table length differs", label, f.Name)
		}
		for r := range fa.Val {
			if !fa.Val[r].BitEqual(fb.Val[r]) {
				t.Errorf("%s: %s r%d = %v vs %v", label, f.Name, r, fa.Val[r], fb.Val[r])
			}
		}
	}
}

func diagsEqual(t *testing.T, label string, a, b []Diagnostic) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: diagnostic count %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].Func != b[i].Func || a[i].SCC != b[i].SCC ||
			a[i].Pass != b[i].Pass || a[i].Msg != b[i].Msg {
			t.Errorf("%s: diagnostic %d differs: %v vs %v", label, i, a[i], b[i])
		}
	}
}

// TestNonConvergenceDemotesTop: a MaxPasses=1 run on the mutually
// recursive program must say so (Converged false), contain no optimistic
// ⊤ in any reported result, and carry at least one non-convergence
// diagnostic — instead of silently reporting unconverged optimistic
// ranges, which are indistinguishable from converged ones.
func TestNonConvergenceDemotesTop(t *testing.T) {
	prog := compileSrc(t, "mutual", mutualSrc)

	cfg := DefaultConfig()
	cfg.MaxPasses = 1
	res, err := Analyze(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Converged {
		t.Fatal("MaxPasses=1 on mutual recursion reported Converged=true")
	}
	if n := countTops(res); n != 0 {
		t.Errorf("unconverged result still reports %d ⊤ value(s); all must be demoted to ⊥", n)
	}
	nc := diagsOfKind(res.Diagnostics, DiagNonConvergence)
	if len(nc) == 0 {
		t.Fatal("no non-convergence diagnostic emitted")
	}
	for _, d := range nc {
		if d.Func == "" || d.SCC < 0 {
			t.Errorf("non-convergence diagnostic missing function/SCC: %v", d)
		}
	}

	// The converged run is the contrast: Converged true, no diagnostics.
	// (This SCC needs ~26 passes, well beyond the default budget of 8 —
	// which is exactly why the silent-truncation bug mattered.)
	fullCfg := DefaultConfig()
	fullCfg.MaxPasses = 64
	full, err := Analyze(prog, fullCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !full.Stats.Converged {
		t.Fatal("MaxPasses=64 run on mutual recursion did not converge")
	}
	if len(full.Diagnostics) != 0 {
		t.Errorf("converged run has diagnostics: %v", full.Diagnostics)
	}
	// A converged result may keep ⊤ for genuinely unreachable code; only
	// the unconverged path demotes.
}

// TestNonConvergenceDeterministic: the demoted results and diagnostics of
// an unconverged run are bit-identical for Workers 1 and 8.
func TestNonConvergenceDeterministic(t *testing.T) {
	prog := compileSrc(t, "mutual", mutualSrc)
	run := func(workers int) *Result {
		cfg := DefaultConfig()
		cfg.MaxPasses = 1
		cfg.Workers = workers
		res, err := Analyze(prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq, par := run(1), run(8)
	branchesEqual(t, "nonconvergence", seq.Branches(), par.Branches())
	valsEqual(t, "nonconvergence", prog, seq, par)
	diagsEqual(t, "nonconvergence", seq.Diagnostics, par.Diagnostics)
	if seq.Stats.Converged != par.Stats.Converged {
		t.Error("Converged differs across worker counts")
	}
}

// TestCancelledContext: an already-cancelled context aborts before any
// pass, returning the typed *AnalysisError that unwraps to
// context.Canceled, for every worker count.
func TestCancelledContext(t *testing.T) {
	prog := compileSrc(t, "mutual", mutualSrc)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 8} {
		cfg := DefaultConfig()
		cfg.Workers = workers
		res, err := AnalyzeContext(ctx, prog, cfg)
		if res != nil {
			t.Fatalf("workers=%d: cancelled analysis returned a result", workers)
		}
		var ae *AnalysisError
		if !errors.As(err, &ae) {
			t.Fatalf("workers=%d: error is %T, want *AnalysisError", workers, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: error does not unwrap to context.Canceled: %v", workers, err)
		}
		if ae.Stats.Passes != 0 {
			t.Errorf("workers=%d: pre-cancelled run reports %d passes", workers, ae.Stats.Passes)
		}
		if len(diagsOfKind(ae.Diagnostics, DiagCancelled)) == 0 {
			t.Errorf("workers=%d: no cancellation diagnostic", workers)
		}
	}
}

// TestMidWaveCancellation: cancelling while the first wave's engine runs
// (via the test hook) stops the fixpoint mid-flight; the driver returns
// the typed error with the partial stats of the work already done. Runs
// under -race in `make check` with Workers 8, exercising the concurrent
// cancellation path.
func TestMidWaveCancellation(t *testing.T) {
	prog := compileSrc(t, "mutual", mutualSrc)
	for _, workers := range []int{1, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		cfg := DefaultConfig()
		cfg.Workers = workers
		cfg.testHookEngineRun = func(f *ir.Func) {
			if f.Name == "main" {
				cancel() // fires during wave 0, before even/odd run
			}
		}
		res, err := AnalyzeContext(ctx, prog, cfg)
		cancel()
		if res != nil {
			t.Fatalf("workers=%d: cancelled analysis returned a result", workers)
		}
		var ae *AnalysisError
		if !errors.As(err, &ae) || !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: want *AnalysisError wrapping context.Canceled, got %v", workers, err)
		}
		// main itself completes (cancellation is observed between
		// functions); the even/odd SCC must not have run.
		if ae.Stats.FuncsAnalyzed > 1 {
			t.Errorf("workers=%d: %d functions analyzed after mid-wave cancel, want ≤1",
				workers, ae.Stats.FuncsAnalyzed)
		}
	}
}

// TestPanicIsolation: a panic inside one function's engine — on a pooled
// goroutine under Workers 8 — must not kill the process. The panicking
// function degrades to ⊥ values with heuristic-only branch probabilities;
// every function outside its dependence chain keeps exact results; and a
// diagnostic names the function, its SCC, and the panic value.
func TestPanicIsolation(t *testing.T) {
	// main's branches do not consume bad's return value, so every
	// function except bad itself must match the clean run exactly.
	const src = `
func bad(x) {
	var s = 0;
	for (var i = 0; i < x; i++) { s += i; }
	return s;
}
func good(x) {
	if (x < 10) { return 1; }
	return 2;
}
func main() {
	print(bad(3));
	var b = good(input());
	if (b == 1) { print(1); } else { print(2); }
}`
	prog := compileSrc(t, "panicprog", src)

	clean, err := Analyze(prog, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	run := func(workers int) *Result {
		cfg := DefaultConfig()
		cfg.Workers = workers
		cfg.testHookEngineRun = func(f *ir.Func) {
			if f.Name == "bad" {
				panic("injected engine failure")
			}
		}
		res, err := Analyze(prog, cfg)
		if err != nil {
			t.Fatalf("workers=%d: analysis died instead of isolating the panic: %v", workers, err)
		}
		return res
	}
	res := run(8)

	bad := prog.ByName["bad"]
	fr := res.Funcs[bad]
	if fr == nil || !fr.Degraded {
		t.Fatal("panicking function has no degraded result")
	}
	for r, v := range fr.Val {
		if !v.IsBottom() {
			t.Errorf("bad r%d = %v, want ⊥", r, v)
		}
	}
	for br, src := range fr.BranchSource {
		if src != ByHeuristic {
			t.Errorf("bad branch %v source = %v, want heuristic", br, src)
		}
	}
	if res.Stats.FuncsDegraded != 1 {
		t.Errorf("FuncsDegraded = %d, want 1", res.Stats.FuncsDegraded)
	}

	// Diagnostic names function, SCC and panic value.
	pd := diagsOfKind(res.Diagnostics, DiagPanic)
	if len(pd) != 1 {
		t.Fatalf("panic diagnostics = %d, want 1 (quarantine must prevent repeats)", len(pd))
	}
	if pd[0].Func != "bad" || pd[0].SCC < 0 {
		t.Errorf("panic diagnostic missing function/SCC: %v", pd[0])
	}
	if pv, ok := pd[0].PanicValue.(string); !ok || pv != "injected engine failure" {
		t.Errorf("panic value = %v", pd[0].PanicValue)
	}
	if !strings.Contains(pd[0].Msg, "injected engine failure") {
		t.Errorf("panic diagnostic message does not name the panic: %q", pd[0].Msg)
	}

	// Exactness everywhere else: good and main keep the clean run's
	// branch probabilities bit for bit.
	for _, f := range prog.Funcs {
		if f == bad {
			continue
		}
		cf, rf := clean.Funcs[f], res.Funcs[f]
		for _, b := range f.Blocks {
			tm := b.Terminator()
			if tm == nil || tm.Op != ir.OpBr {
				continue
			}
			cp, cok := cf.BranchProb[tm]
			rp, rok := rf.BranchProb[tm]
			if cok != rok || math.Float64bits(cp) != math.Float64bits(rp) {
				t.Errorf("%s: branch prob %v vs clean %v", f.Name, rp, cp)
			}
		}
	}

	// And the degraded world is itself deterministic across worker counts.
	seq := run(1)
	branchesEqual(t, "panic", seq.Branches(), res.Branches())
	valsEqual(t, "panic", prog, seq, res)
	diagsEqual(t, "panic", seq.Diagnostics, res.Diagnostics)
}

// TestStepBudgetDegrades: a tiny MaxEngineSteps budget degrades every
// non-trivial function to ⊥/heuristic — with a diagnostic per function —
// instead of letting a pathological input spin the engine, and the
// degraded results are bit-identical across worker counts.
func TestStepBudgetDegrades(t *testing.T) {
	prog := compileSrc(t, "mutual", mutualSrc)
	run := func(workers int) *Result {
		cfg := DefaultConfig()
		cfg.MaxEngineSteps = 1
		cfg.Workers = workers
		res, err := Analyze(prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run(8)
	sb := diagsOfKind(res.Diagnostics, DiagStepBudget)
	if len(sb) == 0 {
		t.Fatal("no step-budget diagnostics with MaxEngineSteps=1")
	}
	for _, d := range sb {
		if d.Func == "" || d.SCC < 0 {
			t.Errorf("step-budget diagnostic missing function/SCC: %v", d)
		}
	}
	if res.Stats.FuncsDegraded == 0 {
		t.Error("FuncsDegraded = 0 under a one-step budget")
	}
	for _, fr := range res.Funcs {
		if !fr.Degraded {
			continue
		}
		for r, v := range fr.Val {
			if !v.IsBottom() {
				t.Errorf("%s r%d = %v after budget degradation, want ⊥", fr.Fn.Name, r, v)
			}
		}
	}
	if countTops(res) != 0 {
		t.Error("step-budget run reports ⊤ values")
	}

	seq := run(1)
	branchesEqual(t, "stepbudget", seq.Branches(), res.Branches())
	valsEqual(t, "stepbudget", prog, seq, res)
	diagsEqual(t, "stepbudget", seq.Diagnostics, res.Diagnostics)
}

// TestGenerousBudgetIsInvisible: a budget large enough for the program
// must change nothing — same results, no diagnostics — so enabling the
// safety valve in production is free.
func TestGenerousBudgetIsInvisible(t *testing.T) {
	prog := compileSrc(t, "mutual", mutualSrc)
	base := DefaultConfig()
	base.MaxPasses = 64 // enough for this SCC to truly converge
	clean, err := Analyze(prog, base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.MaxEngineSteps = 1 << 20
	res, err := Analyze(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diagnostics) != 0 {
		t.Errorf("generous budget produced diagnostics: %v", res.Diagnostics)
	}
	branchesEqual(t, "generous", clean.Branches(), res.Branches())
	valsEqual(t, "generous", prog, clean, res)
}

// TestDemoteTop covers the vrange helper directly.
func TestDemoteTop(t *testing.T) {
	if !vrange.DemoteTop(vrange.TopValue()).IsBottom() {
		t.Error("DemoteTop(⊤) != ⊥")
	}
	if !vrange.DemoteTop(vrange.BottomValue()).IsBottom() {
		t.Error("DemoteTop(⊥) != ⊥")
	}
	c := vrange.Const(7)
	if !vrange.DemoteTop(c).Equal(c) {
		t.Error("DemoteTop changed a constant")
	}
}
