package vrp

import (
	"vrp/internal/ir"
	"vrp/internal/vrange"
)

// Loop-carried derivation (§3.6): a loop-carried variable's range is found
// without executing the loop by matching its derivation against the
// template
//
//	new value = old value ± {set of possible increments}
//	assert(new value between specific bounds)
//
// The walker follows the SSA chain backwards from each back-edge operand
// of the header φ to the φ itself, accumulating increments (from
// constant-operand adds/subs) and bound assertions (from π-instructions on
// the chain). Intermediate φs — joins of complementary assertion families
// or of several increment paths — fan the walk out into multiple paths.
// If every path matches, the φ's range is
//
//	{ 1 [ init_lo : tightest_bound + overshoot : gcd(increments) ] }
//
// (mirrored for down-counting loops). Any mismatch fails the derivation
// and the engine falls back to brute-force propagation, exactly as the
// paper prescribes ("one should view derivation matching as an efficiency
// optimization").

type deriveStatus int

const (
	deriveOK deriveStatus = iota
	deriveNotReady
	deriveFail
)

const (
	maxDerivePaths = 16
	maxDeriveSteps = 512
)

// pathResult is the walk outcome for one latch-to-φ path.
type pathResult struct {
	inc    int64 // net increment applied per trip along this path
	hasInc bool
	// Effective bounds on the φ value implied by asserts on the path
	// (already adjusted by increments applied after the test).
	uppers []vrange.Bound
	lowers []vrange.Bound
}

// walker is the derivation chain matcher. One instance lives in each
// function's engineScratch and is recycled across derivation attempts:
// paths/deps restart empty per derive, uppers/lowers/onPath are stacks
// maintained with push-on-entry/pop-on-return discipline, so steady-state
// walks never allocate.
type walker struct {
	e     *engine
	phi   *ir.Instr
	steps int
	paths []pathResult
	state deriveStatus
	deps  []ir.Reg // registers consulted; value changes re-trigger derivation

	uppers []vrange.Bound // bounds collected along the current path
	lowers []vrange.Bound
	onPath []bool // by register: on the current walk stack
}

// derive attempts the template match for a loop-header φ.
func (e *engine) derive(phi *ir.Instr) (vrange.Value, deriveStatus) {
	b := phi.Block
	sc := e.sc

	// Initial value: merge of the operands arriving on forward edges.
	initItems := sc.dvItems[:0]
	initRegs := sc.dvRegs[:0]
	backOps := sc.dvBack[:0]
	for i, pe := range b.Preds {
		if e.backEdges[pe] {
			backOps = append(backOps, phi.Args[i])
			continue
		}
		initRegs = append(initRegs, phi.Args[i])
		initItems = append(initItems, vrange.Weighted{Val: e.val[phi.Args[i]], W: 1})
	}
	sc.dvItems, sc.dvRegs, sc.dvBack = initItems[:0], initRegs[:0], backOps[:0]
	if len(backOps) == 0 || len(initRegs) == 0 {
		return vrange.Value{}, deriveFail
	}
	initVal := e.calc.Merge(initItems)
	if initVal.IsTop() {
		return vrange.Value{}, deriveNotReady
	}

	w := &sc.dw
	w.e, w.phi, w.steps, w.state = e, phi, 0, deriveOK
	w.paths = w.paths[:0]
	w.deps = w.deps[:0]
	w.uppers = w.uppers[:0]
	w.lowers = w.lowers[:0]
	for _, r := range initRegs {
		w.deps = append(w.deps, r)
	}
	for _, op := range backOps {
		w.walk(op, 0)
		if w.state != deriveOK {
			break
		}
	}
	if w.state == deriveOK && len(w.paths) == 0 {
		w.state = deriveFail
	}
	if w.state != deriveOK {
		if w.state == deriveNotReady {
			e.recordDeriveDeps(phi, w.deps)
		}
		return vrange.Value{}, w.state
	}

	v, st := e.combinePaths(phi, initVal, initRegs, w.paths)
	e.recordDeriveDeps(phi, w.deps)
	return v, st
}

func (e *engine) recordDeriveDeps(phi *ir.Instr, deps []ir.Reg) {
	for _, r := range deps {
		found := false
		for _, p := range e.deriveDeps[r] {
			if p == phi {
				found = true
				break
			}
		}
		if !found {
			e.deriveDeps[r] = append(e.deriveDeps[r], phi)
		}
	}
}

// walk follows the chain backwards from reg, with inc the net increment
// applied after the current position (later in program order). The
// uppers/lowers bound stacks and the onPath marks live on the walker and
// are restored on return; a completed path copies the stacks into its
// pathResult.
func (w *walker) walk(reg ir.Reg, inc int64) {
	if w.state != deriveOK {
		return
	}
	w.steps++
	if w.steps > maxDeriveSteps || len(w.paths) > maxDerivePaths {
		w.state = deriveFail
		return
	}
	if w.onPath[reg] {
		w.state = deriveFail // cycle through an inner structure
		return
	}
	def := w.e.f.Defs[reg]
	if def == nil {
		w.state = deriveFail
		return
	}
	if def == w.phi {
		var us, ls []vrange.Bound
		if len(w.uppers) > 0 {
			us = append([]vrange.Bound(nil), w.uppers...)
		}
		if len(w.lowers) > 0 {
			ls = append([]vrange.Bound(nil), w.lowers...)
		}
		w.paths = append(w.paths, pathResult{inc: inc, hasInc: true, uppers: us, lowers: ls})
		return
	}
	w.onPath[reg] = true
	defer func() { w.onPath[reg] = false }()

	switch def.Op {
	case ir.OpCopy:
		w.walk(def.A, inc)

	case ir.OpAssert:
		if u, l, hasU, hasL, st := w.e.assertEffectiveBounds(def, inc); st != deriveOK {
			if st == deriveNotReady {
				w.state = deriveNotReady
			}
			// Unusable asserts (e.g. !=) are transparent.
			w.walk(def.Parent, inc)
			return
		} else {
			nu, nl := len(w.uppers), len(w.lowers)
			if hasU {
				w.uppers = append(w.uppers, u)
			}
			if hasL {
				w.lowers = append(w.lowers, l)
			}
			w.walk(def.Parent, inc)
			w.uppers = w.uppers[:nu]
			w.lowers = w.lowers[:nl]
		}

	case ir.OpBin:
		switch def.BinOp {
		case ir.BinAdd:
			if k, st := w.constOperand(def.B); st == deriveOK {
				w.walk(def.A, inc+k)
				return
			} else if st == deriveNotReady {
				w.state = deriveNotReady
				return
			}
			if k, st := w.constOperand(def.A); st == deriveOK {
				w.walk(def.B, inc+k)
				return
			} else if st == deriveNotReady {
				w.state = deriveNotReady
				return
			}
			w.state = deriveFail
		case ir.BinSub:
			if k, st := w.constOperand(def.B); st == deriveOK {
				w.walk(def.A, inc-k)
				return
			} else if st == deriveNotReady {
				w.state = deriveNotReady
				return
			}
			w.state = deriveFail
		default:
			w.state = deriveFail
		}

	case ir.OpPhi:
		// An intermediate join: every operand continues the same path
		// prefix (typically the merge of an if/else inside the loop body).
		// An operand that chases — through copies and assertions only —
		// back to this φ or to a register already on the path is a
		// runtime-identity back-reference through an inner cycle (the
		// assertion versioning of a variable the inner loop never
		// modifies); it carries no new increments or bounds and is
		// skipped rather than walked into a cycle failure.
		walked := false
		for _, a := range def.Args {
			o := w.e.chaseCopyAssert(a, def.Dst)
			if o == def.Dst || w.onPath[o] {
				continue
			}
			w.walk(a, inc)
			if w.state != deriveOK {
				return
			}
			walked = true
		}
		if !walked {
			w.state = deriveFail // pure cycle: no forward path to the header
		}

	default:
		w.state = deriveFail
	}
}

// constOperand resolves an operand to a compile-time constant using the
// current value table, recording the dependency.
func (w *walker) constOperand(r ir.Reg) (int64, deriveStatus) {
	v := w.e.val[r]
	if v.IsTop() {
		w.deps = append(w.deps, r)
		return 0, deriveNotReady
	}
	if k, ok := v.AsConst(); ok {
		w.deps = append(w.deps, r)
		return k, deriveOK
	}
	return 0, deriveFail
}

// assertEffectiveBounds converts a π-instruction on the chain into an
// effective bound on the φ value: the asserted limit shifted by the
// increments applied after the test (inc). hasUp/hasLo report which of
// the value results are meaningful (returned by value so the hot walk
// never heap-allocates a Bound).
func (e *engine) assertEffectiveBounds(def *ir.Instr, inc int64) (upper, lower vrange.Bound, hasUp, hasLo bool, st deriveStatus) {
	var bound vrange.Bound
	if def.B == ir.None {
		bound = vrange.Num(def.Const)
	} else {
		v := e.val[def.B]
		switch {
		case v.IsTop():
			return vrange.Bound{}, vrange.Bound{}, false, false, deriveNotReady
		case v.Kind() == vrange.Set && !v.IsInfeasible():
			// A loop-variant bound (its root is itself a φ, e.g. the
			// triangular `j < i`) keeps its symbolic name: the per-entry
			// correlation between the two induction variables would be
			// lost by flattening to the hull of all outer iterations.
			if e.cfg.Range.Symbolic {
				if root := e.rootOf(def.B); root != ir.None {
					if d := e.f.Defs[root]; d != nil && d.Op == ir.OpPhi {
						bound = vrange.Sym(root, 0)
						break
					}
				}
			}
			// Loop-invariant bound: use the hull side matching the
			// relation direction.
			lo, hi, ok := hullOf(v)
			if !ok {
				if !e.cfg.Range.Symbolic {
					return vrange.Bound{}, vrange.Bound{}, false, false, deriveFail
				}
				bound = vrange.Sym(e.rootOf(def.B), 0)
				break
			}
			switch def.BinOp {
			case ir.BinLt, ir.BinLe, ir.BinEq:
				bound = hi
			default:
				bound = lo
			}
		default: // ⊥
			if !e.cfg.Range.Symbolic {
				return vrange.Bound{}, vrange.Bound{}, false, false, deriveFail
			}
			bound = vrange.Sym(e.rootOf(def.B), 0)
		}
	}

	shift := func(b vrange.Bound, d int64) (vrange.Bound, bool) {
		nb := vrange.Bound{Var: b.Var, Const: b.Const + d}
		// Overflow of the constant part is a derivation failure, not a
		// soundness issue (the fallback is brute force).
		if (d > 0 && nb.Const < b.Const) || (d < 0 && nb.Const > b.Const) {
			return b, false
		}
		return nb, true
	}

	switch def.BinOp {
	case ir.BinLt:
		if b, ok := shift(bound, inc-1); ok {
			return b, vrange.Bound{}, true, false, deriveOK
		}
	case ir.BinLe, ir.BinEq:
		if b, ok := shift(bound, inc); ok {
			if def.BinOp == ir.BinEq {
				return b, b, true, true, deriveOK
			}
			return b, vrange.Bound{}, true, false, deriveOK
		}
	case ir.BinGt:
		if b, ok := shift(bound, inc+1); ok {
			return vrange.Bound{}, b, false, true, deriveOK
		}
	case ir.BinGe:
		if b, ok := shift(bound, inc); ok {
			return vrange.Bound{}, b, false, true, deriveOK
		}
	}
	return vrange.Bound{}, vrange.Bound{}, false, false, deriveFail
}

func hullOf(v vrange.Value) (lo, hi vrange.Bound, ok bool) {
	if v.Kind() != vrange.Set || len(v.Ranges) == 0 {
		return vrange.Bound{}, vrange.Bound{}, false
	}
	lo, hi = v.Ranges[0].Lo, v.Ranges[0].Hi
	for _, r := range v.Ranges[1:] {
		if d, okd := r.Lo.Diff(lo); okd && d < 0 {
			lo = r.Lo
		} else if !okd {
			return vrange.Bound{}, vrange.Bound{}, false
		}
		if d, okd := r.Hi.Diff(hi); okd && d > 0 {
			hi = r.Hi
		} else if !okd {
			return vrange.Bound{}, vrange.Bound{}, false
		}
	}
	return lo, hi, true
}

// combinePaths folds the per-path increments and bounds with the initial
// value into the derived range. It also classifies the derivation: a φ
// whose every path carries its own exit constraint and a non-zero
// increment is a *strict* induction variable, usable as the trip-count
// anchor for coupled accumulators; coupled derivations themselves are not
// (two accumulators must never anchor each other — the paths would confirm
// an arbitrary fixpoint).
func (e *engine) combinePaths(phi *ir.Instr, initVal vrange.Value, initRegs []ir.Reg, paths []pathResult) (vrange.Value, deriveStatus) {
	// Initial bounds.
	var initLo, initHi vrange.Bound
	var initStride int64
	switch {
	case initVal.Kind() == vrange.Set && !initVal.IsInfeasible():
		lo, hi, ok := hullOf(initVal)
		if !ok {
			return vrange.Value{}, deriveFail
		}
		initLo, initHi = lo, hi
		initStride = 0
		for _, r := range initVal.Ranges {
			initStride = gcdI(initStride, r.Stride)
			if d, okd := r.Lo.Diff(initLo); okd {
				initStride = gcdI(initStride, d)
			}
		}
	case initVal.IsBottom() && e.cfg.Range.Symbolic && len(initRegs) == 1:
		// Unknown start: anchor the range symbolically at the entry
		// operand (e.g. `for (i = start; i < n; i++)`).
		root := e.rootOf(initRegs[0])
		initLo = vrange.Sym(root, 0)
		initHi = initLo
		initStride = 0
	default:
		return vrange.Value{}, deriveFail
	}

	pos, neg := false, false
	var stride int64
	for _, p := range paths {
		if p.inc > 0 {
			pos = true
		} else if p.inc < 0 {
			neg = true
		}
		stride = gcdI(stride, p.inc)
	}
	if pos && neg {
		return vrange.Value{}, deriveFail
	}
	if !pos && !neg {
		// The variable never changes around the loop: its value is init.
		e.derivedStrict[phi.Idx] = false
		return initVal, deriveOK
	}
	stride = gcdI(stride, initStride)
	if stride < 0 {
		stride = -stride
	}
	if stride == 0 {
		stride = 1
	}

	strict := true
	for _, p := range paths {
		if p.inc == 0 {
			strict = false
			break
		}
	}

	var lo, hi vrange.Bound
	if pos {
		lo = initLo
		allBounded := true
		for _, p := range paths {
			if len(p.uppers) == 0 {
				allBounded = false
				break
			}
		}
		if !allBounded {
			// Trip-count-coupled extension (the paper: "adding more
			// templates and more powerful derivation processing reduces
			// the need for brute force"): an accumulator without its own
			// exit test is bounded by the trip count of a sibling strict
			// induction variable in the same header.
			strict = false
			b, st := e.coupledBound(phi, initHi, paths, true)
			if st != deriveOK {
				return vrange.Value{}, st
			}
			hi = b
		} else {
			// Each path must bound the growth; the loosest path wins.
			first := true
			for _, p := range paths {
				pb, ok := tightest(p.uppers, true)
				if !ok {
					return vrange.Value{}, deriveFail
				}
				if first {
					hi, first = pb, false
					continue
				}
				if d, okd := pb.Diff(hi); okd {
					if d > 0 {
						hi = pb
					}
				} else {
					return vrange.Value{}, deriveFail
				}
			}
			// The initial value may already exceed the loop bound.
			if d, ok := initHi.Diff(hi); ok && d > 0 {
				hi = initHi
			}
		}
	} else {
		hi = initHi
		allBounded := true
		for _, p := range paths {
			if len(p.lowers) == 0 {
				allBounded = false
				break
			}
		}
		if !allBounded {
			strict = false
			b, st := e.coupledBound(phi, initLo, paths, false)
			if st != deriveOK {
				return vrange.Value{}, st
			}
			lo = b
		} else {
			first := true
			for _, p := range paths {
				pb, ok := tightest(p.lowers, false)
				if !ok {
					return vrange.Value{}, deriveFail
				}
				if first {
					lo, first = pb, false
					continue
				}
				if d, okd := pb.Diff(lo); okd {
					if d < 0 {
						lo = pb
					}
				} else {
					return vrange.Value{}, deriveFail
				}
			}
			if d, ok := initLo.Diff(lo); ok && d < 0 {
				lo = initLo
			}
		}
	}

	e.derivedStrict[phi.Idx] = strict
	// Normalise: empty ranges mean the loop body re-entry is impossible;
	// the φ value is then just the initial value.
	if d, ok := hi.Diff(lo); ok {
		if d < 0 {
			return initVal, deriveOK
		}
		// Align the far end to the stride grid anchored at the initial
		// value's side: an up-counting variable is anchored at lo, a
		// down-counting one at hi (its values are init, init-s, ...).
		excess := d % stride
		if excess != 0 {
			if pos {
				hi = vrange.Bound{Var: hi.Var, Const: hi.Const - excess}
			} else {
				lo = vrange.Bound{Var: lo.Var, Const: lo.Const + excess}
			}
		}
		if dd, _ := hi.Diff(lo); dd == 0 {
			stride = 0
		}
	}
	r := vrange.Range{Prob: 1, Lo: lo, Hi: hi, Stride: stride}
	return vrange.FromRanges(r), deriveOK
}

// tightest picks the strongest bound of a set: the minimum for uppers, the
// maximum for lowers. Incomparable bounds prefer the numeric one — the
// loop's own exit test is numeric or anchored on a stable value, whereas a
// symbolic bound from an incidental cross-variable assertion (e.g. `i <= j`
// on an inner loop's exit) can reference a sibling induction variable and
// close a circular symbolic definition.
func tightest(bs []vrange.Bound, upper bool) (vrange.Bound, bool) {
	if len(bs) == 0 {
		return vrange.Bound{}, false
	}
	best := bs[0]
	for _, b := range bs[1:] {
		d, ok := b.Diff(best)
		if !ok {
			if b.IsNum() && !best.IsNum() {
				best = b
			}
			continue // otherwise keep the earlier one
		}
		if (upper && d < 0) || (!upper && d > 0) {
			best = b
		}
	}
	return best, true
}

func gcdI(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// coupledBound derives the far bound of an accumulator φ without its own
// exit test: the loop's trip count is read off a sibling derived φ (the
// loop-control variable) in the same header, and the accumulator moves by
// at most its largest per-trip increment each trip. The value of the
// sibling is recorded as a derivation dependency so a later lowering
// re-derives this φ; until a sibling is derived the result is "not ready"
// (brute-force propagation continues meanwhile).
func (e *engine) coupledBound(phi *ir.Instr, initFar vrange.Bound, paths []pathResult, upper bool) (vrange.Bound, deriveStatus) {
	trips, dep, ok := e.siblingTripCount(phi)
	if !ok {
		for _, in := range phi.Block.Phis() {
			if in != phi && in.Op == ir.OpPhi {
				e.recordDeriveDeps(phi, []ir.Reg{in.Dst})
			}
		}
		return vrange.Bound{}, deriveNotReady
	}
	e.recordDeriveDeps(phi, []ir.Reg{dep})
	var extreme int64
	for _, p := range paths {
		if upper && p.inc > extreme {
			extreme = p.inc
		}
		if !upper && p.inc < extreme {
			extreme = p.inc
		}
	}
	total := trips * extreme
	if extreme != 0 && total/extreme != trips {
		return vrange.Bound{}, deriveFail // overflow
	}
	b, okAdd := initFar.AddConst(total)
	if !okAdd {
		return vrange.Bound{}, deriveFail
	}
	return b, deriveOK
}

// siblingTripCount finds a derived sibling φ with an exact numeric range
// and returns its implied body trip count (the φ range includes the exit
// value, so trips = count-1).
func (e *engine) siblingTripCount(phi *ir.Instr) (int64, ir.Reg, bool) {
	for _, in := range phi.Block.Phis() {
		if in == phi || in.Op != ir.OpPhi || !e.derived[in.Idx] || !e.derivedStrict[in.Idx] {
			continue
		}
		v := e.val[in.Dst]
		if v.Kind() != vrange.Set || len(v.Ranges) != 1 {
			continue
		}
		n, ok := v.Ranges[0].Count()
		if !ok || n <= 0 || n > 1<<32 {
			continue
		}
		return n - 1, in.Dst, true
	}
	return 0, ir.None, false
}
