package vrp

import (
	"math"
	"testing"

	"vrp/internal/ir"
	"vrp/internal/vrange"
)

// phiValueOf returns the value of the first loop-header φ whose SSA name
// starts with the given variable prefix.
func phiValueOf(t *testing.T, src, varName string) (vrange.Value, *Result) {
	t.Helper()
	p := compile(t, src)
	res, err := Analyze(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := p.Main()
	fr := res.Funcs[f]
	for _, b := range f.Blocks {
		hasBack := false
		for _, pe := range b.Preds {
			if pe.From.ID >= b.ID {
				hasBack = true
			}
		}
		if !hasBack {
			continue
		}
		for _, in := range b.Phis() {
			if in.Op != ir.OpPhi {
				continue
			}
			n := f.Names[in.Dst]
			if len(n) > len(varName) && n[:len(varName)] == varName && n[len(varName)] == '.' {
				return fr.Val[in.Dst], res
			}
		}
	}
	t.Fatalf("no loop φ for %q", varName)
	return vrange.Value{}, nil
}

func wantRange(t *testing.T, v vrange.Value, lo, hi, stride int64) {
	t.Helper()
	if v.Kind() != vrange.Set || len(v.Ranges) != 1 {
		t.Fatalf("value = %v, want single range", v)
	}
	r := v.Ranges[0]
	if !r.Lo.IsNum() || !r.Hi.IsNum() || r.Lo.Const != lo || r.Hi.Const != hi || r.Stride != stride {
		t.Errorf("range = %v, want [%d:%d:%d]", v, lo, hi, stride)
	}
}

func TestDeriveUpCounting(t *testing.T) {
	v, _ := phiValueOf(t, `
func main() {
	for (var i = 0; i < 10; i++) { print(i); }
}`, "i")
	wantRange(t, v, 0, 10, 1)
}

func TestDeriveLeBound(t *testing.T) {
	v, _ := phiValueOf(t, `
func main() {
	for (var i = 0; i <= 10; i++) { print(i); }
}`, "i")
	wantRange(t, v, 0, 11, 1)
}

func TestDeriveDownCounting(t *testing.T) {
	v, _ := phiValueOf(t, `
func main() {
	for (var i = 9; i >= 0; i--) { print(i); }
}`, "i")
	wantRange(t, v, -1, 9, 1)
}

func TestDeriveDownCountingGt(t *testing.T) {
	v, _ := phiValueOf(t, `
func main() {
	for (var i = 20; i > 5; i -= 3) { print(i); }
}`, "i")
	// Values 20,17,14,11,8 then 5 on exit: [5:20:3].
	wantRange(t, v, 5, 20, 3)
}

func TestDeriveNonzeroStart(t *testing.T) {
	v, _ := phiValueOf(t, `
func main() {
	for (var i = 3; i < 12; i += 2) { print(i); }
}`, "i")
	// 3,5,7,9,11,13: hi = 11+2 = 13.
	wantRange(t, v, 3, 13, 2)
}

func TestDeriveWhileShape(t *testing.T) {
	v, _ := phiValueOf(t, `
func main() {
	var i = 0;
	while (i < 100) {
		i += 10;
	}
	print(i);
}`, "i")
	wantRange(t, v, 0, 100, 10)
}

func TestDeriveWithContinue(t *testing.T) {
	// continue adds a second path to the latch; both carry the increment
	// via the post statement.
	v, _ := phiValueOf(t, `
func main() {
	for (var i = 0; i < 30; i++) {
		if (i % 3 == 0) { continue; }
		print(i);
	}
}`, "i")
	wantRange(t, v, 0, 30, 1)
}

func TestDeriveInnerBoundFromOuter(t *testing.T) {
	// Triangular nest: inner bound is the outer induction variable —
	// a symbolic, same-function ancestor.
	src := `
func main() {
	for (var i = 0; i < 10; i++) {
		for (var j = 0; j < i; j++) { print(j); }
	}
}`
	res := analyze(t, src, DefaultConfig())
	// Both loop branches must come from ranges: the outer with its exact
	// constant bound (10/11), the inner via the correlation-preserving
	// symbolic bound (T/(T+1), not the washed-out independent estimate).
	var probs []float64
	for _, br := range res.Branches() {
		if br.Source != ByRange {
			t.Errorf("branch %s predicted by %v", br.Instr, br.Source)
			continue
		}
		probs = append(probs, br.Prob)
	}
	if len(probs) != 2 {
		t.Fatalf("range-predicted branches = %d, want 2", len(probs))
	}
	for _, p := range probs {
		if math.Abs(p-10.0/11) > 0.01 {
			t.Errorf("branch prob %.4f, want ~%.4f", p, 10.0/11)
		}
	}
}

func TestDeriveFailsOnGeometric(t *testing.T) {
	p := compile(t, `
func main() {
	var x = 1;
	while (x < 4096) { x *= 2; }
	print(x);
}`)
	res, err := Analyze(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FailedDerives == 0 {
		t.Error("geometric loop should fail derivation")
	}
	// The loop branch still gets *some* probability.
	for _, br := range res.Branches() {
		if br.Prob < 0 || br.Prob > 1 || math.IsNaN(br.Prob) {
			t.Errorf("prob = %v", br.Prob)
		}
	}
}

func TestDeriveEqExitConstraint(t *testing.T) {
	// `i != n` exit tests don't match the template (the paper's template
	// wants bounding relations); the engine must stay sound regardless.
	res := analyze(t, `
func main() {
	var i = 0;
	while (i != 12) { i += 3; }
	print(i);
}`, DefaultConfig())
	for _, br := range res.Branches() {
		if br.Prob < 0 || br.Prob > 1 {
			t.Errorf("prob out of range: %v", br.Prob)
		}
	}
}

func TestDeriveBoundLoweringReDerives(t *testing.T) {
	// The loop bound is a call result that lowers from ⊤ to a constant
	// across interprocedural passes; the derived φ must follow it.
	v, _ := phiValueOf(t, `
func limit() { return 8; }
func main() {
	for (var i = 0; i < limit(); i++) { print(i); }
}`, "i")
	wantRange(t, v, 0, 8, 1)
}
