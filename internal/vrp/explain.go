package vrp

import (
	"fmt"
	"strings"

	"vrp/internal/ir"
	"vrp/internal/vrange"
)

// Branch provenance ("explain mode"): given an analyzed branch, reconstruct
// the chain of SSA definitions its probability was derived from — the
// controlling value, the φ/assertion/arithmetic steps feeding it, and the
// kind of evaluation each step used (derivation template, weighted merge,
// π-refinement, …). The chain is recomputed from the final value table and
// the engine's Derived marks, so it needs no extra hot-path bookkeeping and
// works whether or not telemetry was enabled.

// ExplainStep is one link in a branch's derivation chain: an SSA
// definition consulted while computing the controlling value, the final
// range it settled at, and how the engine evaluated it.
type ExplainStep struct {
	Reg   ir.Reg
	Instr *ir.Instr
	// Kind names the evaluation rule: "const", "param", "input", "load",
	// "alloc", "copy", "neg", "not", "binop", "assert" (π-refinement),
	// "call" (interprocedural return range), "φ-derived" (§3.6 template)
	// or "φ-merge" (weighted merge over executable in-edges).
	Kind  string
	Value vrange.Value
	Depth int // def-chain distance from the branch condition
}

// Explanation records why one conditional branch got its probability.
type Explanation struct {
	Fn     *ir.Func
	Branch *ir.Instr
	Prob   float64 // probability of the true out-edge
	Source PredictionSource
	Cond   vrange.Value // final value of the controlling register

	// Steps is the breadth-first def chain of the controlling register:
	// Steps[0] is its definition, deeper entries are the operands it was
	// computed from. Bounded; Truncated reports when the walk was cut.
	Steps     []ExplainStep
	Truncated bool

	// Degraded marks a function whose result is the ⊥/heuristic fallback
	// (engine panic or step budget); the chain then explains only why
	// everything is ⊥.
	Degraded bool
}

// Explain chain bounds: generous for a single branch, small enough that a
// pathological def web cannot produce megabytes of output.
const (
	explainMaxSteps = 48
	explainMaxDepth = 16
)

// ExplainBranch reconstructs the derivation chain behind one conditional
// branch of an analyzed function. br must be an OpBr of f.
func (r *Result) ExplainBranch(f *ir.Func, br *ir.Instr) (*Explanation, error) {
	fr := r.Funcs[f]
	if fr == nil {
		return nil, fmt.Errorf("vrp: function %s has no analysis result", f.Name)
	}
	if br == nil || br.Op != ir.OpBr {
		return nil, fmt.Errorf("vrp: instruction is not a conditional branch")
	}
	ex := &Explanation{Fn: f, Branch: br, Degraded: fr.Degraded}
	if p, ok := fr.BranchProb[br]; ok {
		ex.Prob, ex.Source = p, fr.BranchSource[br]
	} else {
		ex.Prob, ex.Source = 0.5, ByDefault
	}
	if int(br.A) < len(fr.Val) {
		ex.Cond = fr.Val[br.A]
	}

	type item struct {
		reg   ir.Reg
		depth int
	}
	queue := []item{{br.A, 0}}
	seen := map[ir.Reg]bool{br.A: true}
	var buf []ir.Reg
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		d := f.Defs[it.reg]
		if d == nil {
			continue
		}
		if len(ex.Steps) >= explainMaxSteps {
			ex.Truncated = true
			break
		}
		step := ExplainStep{Reg: it.reg, Instr: d, Depth: it.depth, Kind: stepKind(fr, d)}
		if int(it.reg) < len(fr.Val) {
			step.Value = fr.Val[it.reg]
		}
		ex.Steps = append(ex.Steps, step)
		if it.depth >= explainMaxDepth {
			ex.Truncated = true
			continue
		}
		buf = d.UseRegs(buf[:0])
		for _, u := range buf {
			if u != ir.None && !seen[u] {
				seen[u] = true
				queue = append(queue, item{u, it.depth + 1})
			}
		}
	}
	return ex, nil
}

// stepKind names the evaluation rule that produced an instruction's value.
func stepKind(fr *FuncResult, d *ir.Instr) string {
	switch d.Op {
	case ir.OpConst:
		return "const"
	case ir.OpParam:
		return "param"
	case ir.OpInput:
		return "input"
	case ir.OpLoad:
		return "load"
	case ir.OpAlloc:
		return "alloc"
	case ir.OpCopy:
		return "copy"
	case ir.OpNeg:
		return "neg"
	case ir.OpNot:
		return "not"
	case ir.OpBin:
		return "binop"
	case ir.OpAssert:
		return "assert"
	case ir.OpCall:
		return "call"
	case ir.OpPhi:
		if fr.Derived[d] {
			return "φ-derived"
		}
		return "φ-merge"
	}
	return d.Op.String()
}

// regName renders a register with its source-level SSA name when one
// exists.
func regName(f *ir.Func, r ir.Reg) string {
	if n, ok := f.Names[r]; ok {
		return n
	}
	return fmt.Sprintf("r%d", r)
}

// kindNote is the one-line human gloss printed next to each step kind.
var kindNote = map[string]string{
	"φ-derived": "loop-carried value from a §3.6 derivation template",
	"φ-merge":   "weighted merge over executable in-edges (§3.3 step 5)",
	"assert":    "π-refinement of the parent by the branch condition (§3.2)",
	"input":     "opaque input: canonical ⊥ producer (§3.5)",
	"load":      "memory load: canonical ⊥ producer (§3.5)",
	"call":      "interprocedural return range of the callee (§3.7)",
	"param":     "merged actual arguments across call sites (§3.7)",
}

// String renders the explanation for humans: the branch line, the range
// (or the reason there is none), and the indented derivation chain.
func (ex *Explanation) String() string {
	f := ex.Fn
	var b strings.Builder
	fmt.Fprintf(&b, "%s:%s  branch on %s  P(true) = %.4f  [%s]\n",
		f.Name, ex.Branch.Pos, regName(f, ex.Branch.A), ex.Prob, ex.Source)
	if ex.Degraded {
		b.WriteString("  (function degraded: engine panic or step budget; all ranges are ⊥)\n")
	}
	fmtVal := func(v vrange.Value) string {
		return v.Format(func(r ir.Reg) string { return regName(f, r) })
	}
	fmt.Fprintf(&b, "  condition %s ∈ %s\n", regName(f, ex.Branch.A), fmtVal(ex.Cond))
	for _, s := range ex.Steps {
		fmt.Fprintf(&b, "  %s%s ∈ %s\t%s", strings.Repeat("  ", s.Depth),
			regName(f, s.Reg), fmtVal(s.Value), s.Kind)
		if note := kindNote[s.Kind]; note != "" {
			fmt.Fprintf(&b, " — %s", note)
		}
		b.WriteByte('\n')
	}
	if ex.Truncated {
		b.WriteString("  … chain truncated\n")
	}
	return b.String()
}
