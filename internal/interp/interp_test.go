package interp

import (
	"errors"
	"strings"
	"testing"

	"vrp/internal/ir"
	"vrp/internal/irgen"
	"vrp/internal/parser"
	"vrp/internal/sem"
	"vrp/internal/ssaform"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := parser.Parse("t.mini", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := sem.Check(p); err != nil {
		t.Fatal(err)
	}
	prog, err := irgen.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := ssaform.Build(prog); err != nil {
		t.Fatal(err)
	}
	return prog
}

func run(t *testing.T, src string, input []int64) *Profile {
	t.Helper()
	prof, err := Run(compile(t, src), input, Options{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return prof
}

func expectOutput(t *testing.T, src string, input, want []int64) {
	t.Helper()
	prof := run(t, src, input)
	if len(prof.Output) != len(want) {
		t.Fatalf("output = %v, want %v", prof.Output, want)
	}
	for i := range want {
		if prof.Output[i] != want[i] {
			t.Fatalf("output = %v, want %v", prof.Output, want)
		}
	}
}

func TestArithmetic(t *testing.T) {
	expectOutput(t, `
func main() {
	print(2 + 3 * 4);
	print((2 + 3) * 4);
	print(7 / 2);
	print(-7 / 2);
	print(7 % 3);
	print(-7 % 3);
	print(5 / 0);
	print(5 % 0);
	print(-(3 - 10));
}`, nil, []int64{14, 20, 3, -3, 1, -1, 0, 0, 7})
}

func TestComparisonsAndLogic(t *testing.T) {
	expectOutput(t, `
func main() {
	print(1 < 2);
	print(2 <= 1);
	print(3 == 3);
	print(3 != 3);
	print(!0);
	print(!7);
	print(1 < 2 && 3 < 4);
	print(1 > 2 || 3 > 4);
	print(true);
	print(false);
}`, nil, []int64{1, 0, 1, 0, 1, 0, 1, 0, 1, 0})
}

func TestShortCircuitSkipsEffects(t *testing.T) {
	// The second operand must not consume input when short-circuited.
	expectOutput(t, `
func main() {
	var a = 0;
	if (a != 0 && input() == 1) { print(99); }
	print(input());
}`, []int64{42}, []int64{42})
}

func TestLoopsAndFunctions(t *testing.T) {
	expectOutput(t, `
func fact(n) {
	if (n <= 1) { return 1; }
	return n * fact(n - 1);
}
func main() {
	var s = 0;
	for (var i = 1; i <= 5; i++) { s += i; }
	print(s);
	print(fact(6));
	var j = 10;
	while (j > 0) { j -= 3; }
	print(j);
}`, nil, []int64{15, 720, -2})
}

func TestArrays(t *testing.T) {
	expectOutput(t, `
func main() {
	var a[5];
	for (var i = 0; i < 5; i++) { a[i] = i * i; }
	a[2] += 100;
	a[3]++;
	print(a[0] + a[1] + a[2] + a[3] + a[4]);
}`, nil, []int64{0 + 1 + 104 + 10 + 16})
}

func TestInputStream(t *testing.T) {
	expectOutput(t, `
func main() {
	print(input());
	print(input());
	print(input()); // exhausted: 0
}`, []int64{7, 8}, []int64{7, 8, 0})
}

func TestBreakContinue(t *testing.T) {
	expectOutput(t, `
func main() {
	var s = 0;
	for (var i = 0; i < 100; i++) {
		if (i % 2 == 0) { continue; }
		if (i > 8) { break; }
		s += i;
	}
	print(s); // 1+3+5+7
}`, nil, []int64{16})
}

func TestEdgeCounts(t *testing.T) {
	prog := compile(t, `
func main() {
	for (var i = 0; i < 10; i++) {
		if (i > 7) { print(i); }
	}
}`)
	prof, err := Run(prog, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Main()
	// Find the two conditional branches and check observed probabilities.
	var probs []float64
	for _, b := range f.Blocks {
		if tm := b.Terminator(); tm != nil && tm.Op == ir.OpBr {
			p, ok := prof.BranchProb(f, tm)
			if !ok {
				t.Fatalf("branch %s never executed", tm)
			}
			probs = append(probs, p)
		}
	}
	if len(probs) != 2 {
		t.Fatalf("branches = %d", len(probs))
	}
	// Loop branch: 10 of 11; guard: 2 of 10.
	if probs[0] < 0.9 || probs[0] > 0.92 {
		t.Errorf("loop branch observed %f", probs[0])
	}
	if probs[1] != 0.2 {
		t.Errorf("guard observed %f", probs[1])
	}
	if prof.CallCount[f] != 1 {
		t.Errorf("main called %d times", prof.CallCount[f])
	}
}

func TestResult(t *testing.T) {
	prof := run(t, "func main() { return 42; }", nil)
	if prof.Result != 42 {
		t.Errorf("result = %d", prof.Result)
	}
}

func TestOutOfBoundsTraps(t *testing.T) {
	prog := compile(t, `
func main() {
	var a[3];
	a[input()] = 1;
}`)
	_, err := Run(prog, []int64{5}, Options{})
	var re *RuntimeError
	if !errors.As(err, &re) {
		t.Fatalf("expected RuntimeError, got %v", err)
	}
	if !strings.Contains(re.Error(), "out of range") {
		t.Errorf("error = %v", re)
	}
	if _, err := Run(prog, []int64{-1}, Options{}); err == nil {
		t.Error("negative index must trap")
	}
	if _, err := Run(prog, []int64{2}, Options{}); err != nil {
		t.Errorf("in-bounds store trapped: %v", err)
	}
}

func TestBadAllocTraps(t *testing.T) {
	prog := compile(t, `
func main() {
	var n = input();
	var a[n];
	a[0] = 1;
	print(a[0]);
}`)
	if _, err := Run(prog, []int64{-3}, Options{}); err == nil {
		t.Error("negative allocation must trap")
	}
	if _, err := Run(prog, []int64{4}, Options{}); err != nil {
		t.Errorf("valid allocation trapped: %v", err)
	}
}

func TestStepBudget(t *testing.T) {
	prog := compile(t, `
func main() {
	while (true) { }
}`)
	_, err := Run(prog, nil, Options{MaxSteps: 1000})
	if err == nil || !strings.Contains(err.Error(), "step budget") {
		t.Errorf("expected step budget error, got %v", err)
	}
}

func TestCallDepthGuard(t *testing.T) {
	prog := compile(t, `
func f(n) { return f(n + 1); }
func main() { print(f(0)); }`)
	_, err := Run(prog, nil, Options{MaxCallDepth: 100})
	if err == nil || !strings.Contains(err.Error(), "depth") {
		t.Errorf("expected depth error, got %v", err)
	}
}

func TestPhiSimultaneity(t *testing.T) {
	// Parallel swap through a loop: φs must read old values.
	expectOutput(t, `
func main() {
	var a = 1;
	var b = 2;
	for (var i = 0; i < 3; i++) {
		var t = a;
		a = b;
		b = t;
	}
	print(a);
	print(b);
}`, nil, []int64{2, 1})
}

func TestNoMain(t *testing.T) {
	prog := compile(t, "func main() {}")
	prog.ByName = map[string]*ir.Func{}
	if _, err := Run(prog, nil, Options{}); err == nil {
		t.Error("missing main must error")
	}
}
