// Package interp executes SSA-form Mini programs and records edge
// execution counts. It serves two experimental roles:
//
//   - ground truth: running a program on its reference input yields the
//     actual probability of every conditional branch, against which all
//     predictors are scored;
//   - the "execution profiling" predictor of §5: counts collected from a
//     run on the (different) training input, used as predictions —
//     mirroring the paper's SPEC input.short/input.ref methodology.
package interp

import (
	"fmt"

	"vrp/internal/ir"
)

// Options bounds an execution.
type Options struct {
	MaxSteps     int64 // instruction budget; 0 means DefaultMaxSteps
	MaxCallDepth int   // recursion guard; 0 means DefaultMaxCallDepth
	MaxArrayLen  int64 // allocation guard; 0 means DefaultMaxArrayLen
}

// Default execution limits.
const (
	DefaultMaxSteps     = 200_000_000
	DefaultMaxCallDepth = 10_000
	DefaultMaxArrayLen  = 1 << 24
)

// Profile is the result of one run.
type Profile struct {
	// EdgeCount[f][e.ID] is the number of traversals of edge e.
	EdgeCount map[*ir.Func][]int64
	// BlockCount[f][b.ID] is the number of executions of block b.
	BlockCount map[*ir.Func][]int64
	// CallCount[f] is the number of invocations of f.
	CallCount map[*ir.Func]int64
	// Output is everything print() produced.
	Output []int64
	// Steps is the number of instructions executed.
	Steps int64
	// Result is main's return value.
	Result int64
}

// BranchProb returns the observed probability of the true edge of a
// conditional branch, and whether the branch executed at all.
func (p *Profile) BranchProb(f *ir.Func, br *ir.Instr) (float64, bool) {
	ec := p.EdgeCount[f]
	if ec == nil || br.Block == nil || len(br.Block.Succs) != 2 {
		return 0, false
	}
	t := float64(ec[br.Block.Succs[0].ID])
	fc := float64(ec[br.Block.Succs[1].ID])
	if t+fc == 0 {
		return 0, false
	}
	return t / (t + fc), true
}

// Run executes the program's main function with the given input stream.
// input values are consumed by input() in order; an exhausted stream
// yields zeros.
func Run(p *ir.Program, input []int64, opts Options) (*Profile, error) {
	if opts.MaxSteps == 0 {
		opts.MaxSteps = DefaultMaxSteps
	}
	if opts.MaxCallDepth == 0 {
		opts.MaxCallDepth = DefaultMaxCallDepth
	}
	if opts.MaxArrayLen == 0 {
		opts.MaxArrayLen = DefaultMaxArrayLen
	}
	main := p.Main()
	if main == nil {
		return nil, fmt.Errorf("interp: program has no main function")
	}
	m := &machine{
		prog:  p,
		opts:  opts,
		input: input,
		prof: &Profile{
			EdgeCount:  map[*ir.Func][]int64{},
			BlockCount: map[*ir.Func][]int64{},
			CallCount:  map[*ir.Func]int64{},
		},
	}
	for _, f := range p.Funcs {
		m.prof.EdgeCount[f] = make([]int64, len(f.Edges))
		m.prof.BlockCount[f] = make([]int64, len(f.Blocks))
	}
	ret, err := m.call(main, nil, 0)
	if err != nil {
		return m.prof, err
	}
	m.prof.Result = ret
	return m.prof, nil
}

type machine struct {
	prog     *ir.Program
	opts     Options
	input    []int64
	inputPos int
	prof     *Profile
}

// RuntimeError describes a trap during execution, with the instruction
// that caused it.
type RuntimeError struct {
	Fn    *ir.Func
	Instr *ir.Instr
	Msg   string
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("interp: %s: %s (at %s)", e.Fn.Name, e.Msg, e.Instr)
}

func (m *machine) trap(f *ir.Func, in *ir.Instr, format string, args ...any) error {
	return &RuntimeError{Fn: f, Instr: in, Msg: fmt.Sprintf(format, args...)}
}

func (m *machine) nextInput() int64 {
	if m.inputPos >= len(m.input) {
		return 0
	}
	v := m.input[m.inputPos]
	m.inputPos++
	return v
}

// call executes one invocation of f.
func (m *machine) call(f *ir.Func, args []int64, depth int) (int64, error) {
	if depth > m.opts.MaxCallDepth {
		return 0, fmt.Errorf("interp: call depth exceeded in %s", f.Name)
	}
	m.prof.CallCount[f]++
	regs := make([]int64, f.NumRegs)
	arrays := make(map[ir.Reg][]int64)

	blk := f.Entry
	var inEdge *ir.Edge
	ec := m.prof.EdgeCount[f]
	bc := m.prof.BlockCount[f]

	for {
		bc[blk.ID]++
		// φ-functions read their operands simultaneously on entry.
		phis := blk.Phis()
		if len(phis) > 0 {
			idx := 0
			if inEdge != nil {
				idx = blk.PredIndex(inEdge)
				if idx < 0 {
					return 0, fmt.Errorf("interp: %s: lost incoming edge at b%d", f.Name, blk.ID)
				}
			}
			vals := make([]int64, len(phis))
			arrs := make([][]int64, len(phis))
			for i, phi := range phis {
				src := phi.Args[idx]
				vals[i] = regs[src]
				arrs[i] = arrays[src]
			}
			for i, phi := range phis {
				regs[phi.Dst] = vals[i]
				if arrs[i] != nil {
					arrays[phi.Dst] = arrs[i]
				}
			}
		}

		for _, in := range blk.Instrs[len(phis):] {
			m.prof.Steps++
			if m.prof.Steps > m.opts.MaxSteps {
				return 0, fmt.Errorf("interp: step budget exceeded (%d)", m.opts.MaxSteps)
			}
			switch in.Op {
			case ir.OpConst:
				regs[in.Dst] = in.Const
			case ir.OpParam:
				if in.ArgIndex < len(args) {
					regs[in.Dst] = args[in.ArgIndex]
				}
			case ir.OpInput:
				regs[in.Dst] = m.nextInput()
			case ir.OpBin:
				regs[in.Dst] = in.BinOp.Eval(regs[in.A], regs[in.B])
			case ir.OpNeg:
				regs[in.Dst] = -regs[in.A]
			case ir.OpNot:
				if regs[in.A] == 0 {
					regs[in.Dst] = 1
				} else {
					regs[in.Dst] = 0
				}
			case ir.OpCopy, ir.OpAssert:
				// Assertions are runtime identities (π-functions).
				regs[in.Dst] = regs[in.A]
				if a, ok := arrays[in.A]; ok {
					arrays[in.Dst] = a
				}
			case ir.OpAlloc:
				n := regs[in.A]
				if n < 0 || n > m.opts.MaxArrayLen {
					return 0, m.trap(f, in, "invalid array length %d", n)
				}
				arrays[in.Dst] = make([]int64, n)
			case ir.OpLoad:
				a := arrays[in.Arr]
				i := regs[in.A]
				if i < 0 || i >= int64(len(a)) {
					return 0, m.trap(f, in, "index %d out of range [0,%d)", i, len(a))
				}
				regs[in.Dst] = a[i]
			case ir.OpStore:
				a := arrays[in.Arr]
				i := regs[in.A]
				if i < 0 || i >= int64(len(a)) {
					return 0, m.trap(f, in, "index %d out of range [0,%d)", i, len(a))
				}
				a[i] = regs[in.B]
			case ir.OpCall:
				callee := m.prog.ByName[in.Callee]
				if callee == nil {
					return 0, m.trap(f, in, "call to unknown function %q", in.Callee)
				}
				cargs := make([]int64, len(in.Args))
				for i, a := range in.Args {
					cargs[i] = regs[a]
				}
				v, err := m.call(callee, cargs, depth+1)
				if err != nil {
					return 0, err
				}
				regs[in.Dst] = v
			case ir.OpPrint:
				m.prof.Output = append(m.prof.Output, regs[in.A])
			case ir.OpRet:
				if in.A != ir.None {
					return regs[in.A], nil
				}
				return 0, nil
			case ir.OpJmp:
				e := blk.Succs[0]
				ec[e.ID]++
				blk, inEdge = e.To, e
			case ir.OpBr:
				var e *ir.Edge
				if regs[in.A] != 0 {
					e = blk.Succs[0]
				} else {
					e = blk.Succs[1]
				}
				ec[e.ID]++
				blk, inEdge = e.To, e
			default:
				return 0, m.trap(f, in, "unexecutable op %s", in.Op)
			}
			if in.Op == ir.OpJmp || in.Op == ir.OpBr {
				break
			}
		}
	}
}
