package genprog_test

import (
	"testing"

	"vrp"
	"vrp/internal/genprog"
)

// TestDeterministic pins the absolute-determinism contract: the same
// Config yields byte-identical source, and different seeds diverge.
func TestDeterministic(t *testing.T) {
	a := genprog.Source(genprog.Default())
	b := genprog.Source(genprog.Default())
	if a != b {
		t.Fatal("same config produced different source")
	}
	other := genprog.Default()
	other.Seed++
	if genprog.Source(other) == a {
		t.Fatal("different seeds produced identical source")
	}
}

// TestDefaultSize pins the benchmark-tier floor: the default config must
// compile (parse, check, SSA) and land at or above 10k IR instructions.
func TestDefaultSize(t *testing.T) {
	p, err := vrp.Compile("gen.mini", genprog.Source(genprog.Default()))
	if err != nil {
		t.Fatalf("generated program does not compile: %v", err)
	}
	if n := p.IR.NumInstrs(); n < 10000 {
		t.Errorf("default config compiles to %d instructions, want >= 10000", n)
	}
}

// TestAnalyzable runs the full analysis over a smaller generated program
// so the generator cannot drift into shapes the engine rejects.
func TestAnalyzable(t *testing.T) {
	cfg := genprog.Default()
	cfg.Funcs = 8
	p, err := vrp.Compile("gen-small.mini", genprog.Source(cfg))
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Analyze()
	if err != nil {
		t.Fatalf("analysis failed: %v", err)
	}
	for _, pr := range res.Predictions() {
		if pr.Prob < 0 || pr.Prob > 1 {
			t.Fatalf("branch probability %v out of [0,1]", pr.Prob)
		}
	}
}
