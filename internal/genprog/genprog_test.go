package genprog_test

import (
	"strings"
	"testing"

	"vrp"
	"vrp/internal/genprog"
)

// TestDeterministic pins the absolute-determinism contract: the same
// Config yields byte-identical source, and different seeds diverge.
func TestDeterministic(t *testing.T) {
	a := genprog.Source(genprog.Default())
	b := genprog.Source(genprog.Default())
	if a != b {
		t.Fatal("same config produced different source")
	}
	other := genprog.Default()
	other.Seed++
	if genprog.Source(other) == a {
		t.Fatal("different seeds produced identical source")
	}
}

// TestDefaultSize pins the benchmark-tier floor: the default config must
// compile (parse, check, SSA) and land at or above 10k IR instructions.
func TestDefaultSize(t *testing.T) {
	p, err := vrp.Compile("gen.mini", genprog.Source(genprog.Default()))
	if err != nil {
		t.Fatalf("generated program does not compile: %v", err)
	}
	if n := p.IR.NumInstrs(); n < 10000 {
		t.Errorf("default config compiles to %d instructions, want >= 10000", n)
	}
}

// TestAnalyzable runs the full analysis over a smaller generated program
// so the generator cannot drift into shapes the engine rejects.
func TestAnalyzable(t *testing.T) {
	cfg := genprog.Default()
	cfg.Funcs = 8
	p, err := vrp.Compile("gen-small.mini", genprog.Source(cfg))
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Analyze()
	if err != nil {
		t.Fatalf("analysis failed: %v", err)
	}
	for _, pr := range res.Predictions() {
		if pr.Prob < 0 || pr.Prob > 1 {
			t.Fatalf("branch probability %v out of [0,1]", pr.Prob)
		}
	}
}

// TestEditFunc pins the single-function-edit contract the incremental
// load tests rely on: the edit is deterministic, still compiles, touches
// exactly one kernel, and fails cleanly on a missing kernel.
func TestEditFunc(t *testing.T) {
	cfg := genprog.Config{Seed: 3, Funcs: 6, Diamonds: 2, LoopDepth: 2}
	base := genprog.Source(cfg)

	edited, ok := genprog.EditFunc(base, 2, 41)
	if !ok {
		t.Fatal("EditFunc(2) failed")
	}
	if again, _ := genprog.EditFunc(base, 2, 41); again != edited {
		t.Fatal("EditFunc is not deterministic")
	}
	if edited == base {
		t.Fatal("EditFunc changed nothing")
	}
	if _, err := vrp.Compile("edited.mini", edited); err != nil {
		t.Fatalf("edited program does not compile: %v", err)
	}

	// Exactly one inserted line, inside kernel 2's body.
	baseLines := strings.Split(base, "\n")
	editLines := strings.Split(edited, "\n")
	if len(editLines) != len(baseLines)+1 {
		t.Fatalf("edit added %d lines, want 1", len(editLines)-len(baseLines))
	}
	diff := -1
	for i := range baseLines {
		if editLines[i] != baseLines[i] {
			diff = i
			break
		}
	}
	if diff < 0 {
		t.Fatal("no differing line found")
	}
	if want := "\ty += 41;"; editLines[diff] != want {
		t.Fatalf("inserted line = %q, want %q", editLines[diff], want)
	}
	header := strings.LastIndex(strings.Join(editLines[:diff], "\n"), "func f")
	if header < 0 || !strings.Contains(edited[header:header+12], "func f2(") {
		t.Errorf("inserted line is not inside f2's body")
	}
	// Everything after the insertion is untouched.
	for i := diff; i < len(baseLines); i++ {
		if baseLines[i] != editLines[i+1] {
			t.Fatalf("line %d changed beyond the insertion", i)
		}
	}

	// Distinct deltas and kernels give distinct programs.
	other, _ := genprog.EditFunc(base, 2, 42)
	if other == edited {
		t.Error("different deltas produced identical edits")
	}
	otherK, _ := genprog.EditFunc(base, 3, 41)
	if otherK == edited {
		t.Error("different kernels produced identical edits")
	}

	if _, ok := genprog.EditFunc(base, cfg.Funcs, 1); ok {
		t.Error("EditFunc on a missing kernel reported success")
	}
	if _, ok := genprog.EditFunc("func main() { print(1); }", 0, 1); ok {
		t.Error("EditFunc on kernel-free source reported success")
	}
}

// TestPresetDeterminism extends the absolute-determinism contract to
// every shape preset and every new shape knob: same config ⇒
// byte-identical source, different seed ⇒ different source, and each
// preset must survive the full compile pipeline.
func TestPresetDeterminism(t *testing.T) {
	for _, name := range genprog.PresetNames() {
		if name == "100k" || name == "1m" {
			continue // mega tiers are exercised by vrpbench -scale, not unit tests
		}
		t.Run(name, func(t *testing.T) {
			cfg, ok := genprog.Preset(name)
			if !ok {
				t.Fatalf("Preset(%q) unknown", name)
			}
			a := genprog.Source(cfg)
			if b := genprog.Source(cfg); b != a {
				t.Fatal("same preset config produced different source")
			}
			reseeded := cfg
			reseeded.Seed++
			if genprog.Source(reseeded) == a {
				t.Fatal("different seeds produced identical source")
			}
			if _, err := vrp.Compile(name+".mini", a); err != nil {
				t.Fatalf("preset does not compile: %v", err)
			}
		})
	}
}

// TestShapeKnobsIndependent pins each new shape knob individually:
// enabling exactly one of BodyStmts/SCCWidth/RecDepth must change the
// generated source (the knob is live) while leaving the zero-valued
// configuration byte-identical to the pre-knob generator output
// (TestDeterministic covers that via Default()).
func TestShapeKnobsIndependent(t *testing.T) {
	base := genprog.Config{Seed: 77, Funcs: 10, Diamonds: 2, LoopDepth: 2}
	baseSrc := genprog.Source(base)
	knobs := []struct {
		name string
		mut  func(*genprog.Config)
	}{
		{"BodyStmts", func(c *genprog.Config) { c.BodyStmts = 3 }},
		{"SCCWidth", func(c *genprog.Config) { c.SCCWidth = 3 }},
		{"RecDepth", func(c *genprog.Config) { c.RecDepth = 2 }},
	}
	for _, k := range knobs {
		t.Run(k.name, func(t *testing.T) {
			cfg := base
			k.mut(&cfg)
			src := genprog.Source(cfg)
			if src == baseSrc {
				t.Fatalf("%s had no effect on the generated source", k.name)
			}
			if again := genprog.Source(cfg); again != src {
				t.Fatalf("%s generation is not deterministic", k.name)
			}
			if _, err := vrp.Compile("knob.mini", src); err != nil {
				t.Fatalf("%s shape does not compile: %v", k.name, err)
			}
		})
	}
}

// TestEditFuncOnMegaShape pins single-function edits on a generated
// mega-program: the 10k scale preset (recursion rings, SCC links and
// body padding all enabled) must stay editable and recompilable, kernel
// by kernel, exactly like the plain benchmark shape.
func TestEditFuncOnMegaShape(t *testing.T) {
	cfg, ok := genprog.Preset("10k")
	if !ok {
		t.Fatal("no 10k preset")
	}
	base := genprog.Source(cfg)
	for _, k := range []int{0, 7, cfg.Funcs - 1} {
		edited, ok := genprog.EditFunc(base, k, int64(100+k))
		if !ok {
			t.Fatalf("EditFunc(%d) failed on the 10k preset", k)
		}
		if edited == base {
			t.Fatalf("EditFunc(%d) changed nothing", k)
		}
		if again, _ := genprog.EditFunc(base, k, int64(100+k)); again != edited {
			t.Fatalf("EditFunc(%d) is not deterministic", k)
		}
		if _, err := vrp.Compile("mega-edit.mini", edited); err != nil {
			t.Fatalf("edited 10k program does not compile: %v", err)
		}
	}
	if _, ok := genprog.EditFunc(base, cfg.Funcs, 1); ok {
		t.Error("EditFunc on a missing kernel reported success")
	}
}
