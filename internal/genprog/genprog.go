// Package genprog deterministically generates large synthetic Mini
// programs for benchmarking the analysis at sizes the hand-written corpus
// does not reach. The hand corpus tops out under 5k IR instructions; the
// lattice and scaling benchmarks need a ≥10k-instruction tier to show
// whether the interner's wall-time win survives table sizes that no
// longer fit comfortably in cache.
//
// The generated shape is deliberately adversarial for the range lattice:
//
//   - Diamond-heavy bodies: chains of if/else over modular and relational
//     conditions, so nearly every block ends in a two-way φ merge and the
//     comparison Bool/Refine paths run constantly.
//   - Deep loops: constant-bounded for nests (LoopDepth levels), so
//     loop-header φs, widening, and the frequency solver's cyclic
//     probabilities all engage.
//   - Cross-kernel calls: a thin call chain between kernels keeps the
//     interprocedural driver honest without exploding pass counts.
//
// Determinism is absolute, not best-effort: the generator uses its own
// splitmix64 stream, so a (Config, seed) pair produces byte-identical
// source on every platform and Go release forever. BENCH_lattice.json
// points generated from it are therefore comparable across runs.
package genprog

import (
	"fmt"
	"strings"
)

// rng is a splitmix64 stream: tiny, well-mixed, and stable by
// construction (unlike math/rand, whose sequences are outside the Go 1
// compatibility promise).
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// Config shapes one generated program.
type Config struct {
	Seed      uint64
	Funcs     int // kernel function count
	Diamonds  int // if/else diamonds in each innermost loop body
	LoopDepth int // for-loop nesting depth per kernel
}

// Default is the configuration behind the benchmark tier: it compiles to
// ≥10k IR instructions (pinned by TestDefaultSize).
func Default() Config {
	return Config{Seed: 0x5eed, Funcs: 56, Diamonds: 6, LoopDepth: 3}
}

type gen struct {
	r      rng
	b      strings.Builder
	indent int
}

func (g *gen) w(format string, args ...any) {
	g.b.WriteString(strings.Repeat("\t", g.indent))
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
}

// diamond emits one if/else over the two kernel locals. Every arm writes
// at least one local, so the join is a real φ for the engine and a real
// two-way weighted merge for the lattice.
func (g *gen) diamond() {
	c := g.r.intn(7) + 2
	k := g.r.intn(17) - 8
	switch g.r.intn(4) {
	case 0:
		g.w("if (x %% %d == %d) {", c, g.r.intn(c))
		g.indent++
		g.w("x += y * 2;")
		g.indent--
		g.w("} else {")
		g.indent++
		g.w("x -= (y + %d);", c)
		g.indent--
		g.w("}")
	case 1:
		g.w("if (y < x) {")
		g.indent++
		g.w("y += %d;", c)
		g.indent--
		g.w("} else {")
		g.indent++
		g.w("y = x - y;")
		g.indent--
		g.w("}")
	case 2:
		g.w("if (x > %d) {", k)
		g.indent++
		g.w("x = (x %% %d) + y;", c+4)
		g.indent--
		g.w("} else {")
		g.indent++
		g.w("x += %d;", c)
		g.indent--
		g.w("}")
	default:
		g.w("if (y >= %d) {", k)
		g.indent++
		g.w("y -= (x %% %d);", c)
		g.indent--
		g.w("} else {")
		g.indent++
		g.w("y += x + %d;", c)
		g.indent--
		g.w("}")
	}
}

// kernel emits one function f<i>(a, b): a LoopDepth-deep for nest whose
// innermost body is a chain of diamonds, with a thin call back to the
// previous kernel every fourth function.
func (g *gen) kernel(i int, cfg Config) {
	g.w("func f%d(a, b) {", i)
	g.indent++
	g.w("var x = a + %d;", g.r.intn(21)-10)
	g.w("var y = b - %d;", g.r.intn(11))
	if i > 0 && i%4 == 0 {
		g.w("y += f%d(x, %d);", i-1, g.r.intn(5))
	}
	for d := 0; d < cfg.LoopDepth; d++ {
		g.w("for (var i%d = 0; i%d < %d; i%d += %d) {",
			d, d, g.r.intn(7)+3, d, g.r.intn(2)+1)
		g.indent++
	}
	for n := 0; n < cfg.Diamonds; n++ {
		g.diamond()
	}
	g.w("x = (x %% 1024 + 1024) %% 1024;")
	for d := 0; d < cfg.LoopDepth; d++ {
		g.indent--
		g.w("}")
	}
	g.w("if (x > y) {")
	g.indent++
	g.w("return x - y;")
	g.indent--
	g.w("}")
	g.w("return y - x;")
	g.indent--
	g.w("}")
}

// EditFunc returns src with one extra statement (`y += <delta>;`)
// inserted into kernel k's body, right after its `var y = ...;` line. The
// edit changes exactly one function, so an incremental analyzer holding
// results for the unedited program should re-analyze only f<k>'s dirty
// cone. Reports false when src has no kernel k.
func EditFunc(src string, k int, delta int64) (string, bool) {
	header := fmt.Sprintf("func f%d(a, b) {\n", k)
	h := strings.Index(src, header)
	if h < 0 {
		return src, false
	}
	body := src[h+len(header):]
	y := strings.Index(body, "\tvar y = ")
	if y < 0 {
		return src, false
	}
	nl := strings.IndexByte(body[y:], '\n')
	if nl < 0 {
		return src, false
	}
	at := h + len(header) + y + nl + 1
	return src[:at] + fmt.Sprintf("\ty += %d;\n", delta) + src[at:], true
}

// Source renders the program for cfg. Same cfg, same bytes.
func Source(cfg Config) string {
	g := &gen{r: rng{s: cfg.Seed}}
	for i := 0; i < cfg.Funcs; i++ {
		g.kernel(i, cfg)
	}
	g.w("func main() {")
	g.indent++
	g.w("var s = input();")
	g.w("var t = 0;")
	for i := 0; i < cfg.Funcs; i++ {
		if i%2 == 0 {
			g.w("t += f%d(s, t);", i)
		} else {
			g.w("t += f%d(t, s %% %d);", i, g.r.intn(9)+2)
		}
	}
	g.w("print(t);")
	g.indent--
	g.w("}")
	return g.b.String()
}
