// Package genprog deterministically generates large synthetic Mini
// programs for benchmarking the analysis at sizes the hand-written corpus
// does not reach. The hand corpus tops out under 5k IR instructions; the
// lattice and scaling benchmarks need a ≥10k-instruction tier to show
// whether the interner's wall-time win survives table sizes that no
// longer fit comfortably in cache.
//
// The generated shape is deliberately adversarial for the range lattice:
//
//   - Diamond-heavy bodies: chains of if/else over modular and relational
//     conditions, so nearly every block ends in a two-way φ merge and the
//     comparison Bool/Refine paths run constantly.
//   - Deep loops: constant-bounded for nests (LoopDepth levels), so
//     loop-header φs, widening, and the frequency solver's cyclic
//     probabilities all engage.
//   - Cross-kernel calls: a thin call chain between kernels keeps the
//     interprocedural driver honest without exploding pass counts.
//
// Determinism is absolute, not best-effort: the generator uses its own
// splitmix64 stream, so a (Config, seed) pair produces byte-identical
// source on every platform and Go release forever. BENCH_lattice.json
// points generated from it are therefore comparable across runs.
package genprog

import (
	"fmt"
	"strings"
)

// rng is a splitmix64 stream: tiny, well-mixed, and stable by
// construction (unlike math/rand, whose sequences are outside the Go 1
// compatibility promise).
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// Config shapes one generated program. The zero value of every knob
// beyond the original four reproduces the pre-knob generator byte for
// byte: new shape features draw from the rng stream only when enabled,
// so existing seeds stay stable.
type Config struct {
	Seed      uint64
	Funcs     int // kernel function count
	Diamonds  int // if/else diamonds in each innermost loop body (diamond density)
	LoopDepth int // for-loop nesting depth per kernel

	// BodyStmts appends this many extra straight-line arithmetic
	// statements to each innermost loop body: function *size* grows
	// without changing branch density, so the knob separates
	// instructions-per-function from CFG shape.
	BodyStmts int

	// SCCWidth ≥ 2 links consecutive kernels into guarded
	// mutually-recursive rings of that width (f_i calls f_{i+1}, the last
	// ring member calls the first), making the call graph's condensation
	// carry SCCs of exactly this width. 0 or 1 keeps kernels
	// non-recursive.
	SCCWidth int

	// RecDepth ≥ 1 adds a dedicated chain of recursive helper functions
	// r0 → r1 → … → r_{RecDepth-1} → r0, each call guarded by a
	// decreasing counter, and makes every eighth kernel call into the
	// chain. The condensation gains one SCC of size RecDepth, exercising
	// recursion widening at configurable depth.
	RecDepth int
}

// Default is the configuration behind the benchmark tier: it compiles to
// ≥10k IR instructions (pinned by TestDefaultSize).
func Default() Config {
	return Config{Seed: 0x5eed, Funcs: 56, Diamonds: 6, LoopDepth: 3}
}

// Preset returns a named generator configuration, or ok=false. Presets
// come in two families:
//
//   - scale tier: "10k", "100k", "1m" — one fixed per-function shape
//     (diamonds, loops, straight-line padding, narrow recursion) scaled
//     purely by function count, so cost-per-instruction is comparable
//     across sizes and the 10k→100k→1M curve measures program-level
//     scaling, not shape drift;
//   - shape stress: "default", "wide-scc", "deep-loop", "recursive" —
//     small programs that push one CFG/call-graph dimension far past the
//     benchmark mix, for differential correctness tests and vrpload
//     traffic diversity.
func Preset(name string) (Config, bool) {
	switch name {
	case "default":
		return Default(), true
	case "10k":
		return Config{Seed: 0x10aD5, Funcs: 50, Diamonds: 6, LoopDepth: 3,
			BodyStmts: 4, SCCWidth: 4, RecDepth: 4}, true
	case "100k":
		return Config{Seed: 0x100aD5, Funcs: 500, Diamonds: 6, LoopDepth: 3,
			BodyStmts: 4, SCCWidth: 4, RecDepth: 4}, true
	case "1m":
		return Config{Seed: 0x1000aD5, Funcs: 5000, Diamonds: 6, LoopDepth: 3,
			BodyStmts: 4, SCCWidth: 4, RecDepth: 4}, true
	case "wide-scc":
		return Config{Seed: 0x51dcc, Funcs: 48, Diamonds: 4, LoopDepth: 2,
			SCCWidth: 12}, true
	case "deep-loop":
		return Config{Seed: 0xdee9, Funcs: 10, Diamonds: 3, LoopDepth: 8}, true
	case "recursive":
		return Config{Seed: 0x2ec0, Funcs: 24, Diamonds: 4, LoopDepth: 2,
			RecDepth: 12}, true
	}
	return Config{}, false
}

// PresetNames lists every Preset name in deterministic order.
func PresetNames() []string {
	return []string{"default", "10k", "100k", "1m", "wide-scc", "deep-loop", "recursive"}
}

// Tier is one point of the mega-scale benchmark series.
type Tier struct {
	Name string
	Cfg  Config
}

// ScaleTiers returns the mega-scale benchmark tier in ascending size:
// the 10k, 100k, and 1M-instruction presets.
func ScaleTiers() []Tier {
	var ts []Tier
	for _, n := range []string{"10k", "100k", "1m"} {
		cfg, _ := Preset(n)
		ts = append(ts, Tier{Name: "gen-" + n, Cfg: cfg})
	}
	return ts
}

type gen struct {
	r      rng
	b      strings.Builder
	indent int
}

func (g *gen) w(format string, args ...any) {
	g.b.WriteString(strings.Repeat("\t", g.indent))
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
}

// diamond emits one if/else over the two kernel locals. Every arm writes
// at least one local, so the join is a real φ for the engine and a real
// two-way weighted merge for the lattice.
func (g *gen) diamond() {
	c := g.r.intn(7) + 2
	k := g.r.intn(17) - 8
	switch g.r.intn(4) {
	case 0:
		g.w("if (x %% %d == %d) {", c, g.r.intn(c))
		g.indent++
		g.w("x += y * 2;")
		g.indent--
		g.w("} else {")
		g.indent++
		g.w("x -= (y + %d);", c)
		g.indent--
		g.w("}")
	case 1:
		g.w("if (y < x) {")
		g.indent++
		g.w("y += %d;", c)
		g.indent--
		g.w("} else {")
		g.indent++
		g.w("y = x - y;")
		g.indent--
		g.w("}")
	case 2:
		g.w("if (x > %d) {", k)
		g.indent++
		g.w("x = (x %% %d) + y;", c+4)
		g.indent--
		g.w("} else {")
		g.indent++
		g.w("x += %d;", c)
		g.indent--
		g.w("}")
	default:
		g.w("if (y >= %d) {", k)
		g.indent++
		g.w("y -= (x %% %d);", c)
		g.indent--
		g.w("} else {")
		g.indent++
		g.w("y += x + %d;", c)
		g.indent--
		g.w("}")
	}
}

// filler emits one straight-line arithmetic statement over the kernel
// locals: no new branches, just instruction mass (the BodyStmts knob).
func (g *gen) filler() {
	c := g.r.intn(19) + 2
	switch g.r.intn(4) {
	case 0:
		g.w("x += (y %% %d) * %d;", c, g.r.intn(3)+1)
	case 1:
		g.w("y += x %% %d;", c)
	case 2:
		g.w("x -= y %% %d;", c)
	default:
		g.w("y -= %d - (x %% %d);", g.r.intn(9), c)
	}
}

// ringNext maps kernel i to its successor in an SCCWidth-wide ring of
// consecutive kernels (the last ring member wraps to the ring's first; a
// truncated tail ring narrows to whatever is left, down to a self-loop).
func ringNext(i, width, funcs int) int {
	start := (i / width) * width
	end := start + width
	if end > funcs {
		end = funcs
	}
	if next := i + 1; next < end {
		return next
	}
	return start
}

// helper emits recursive ring function r<j>(n, m): each helper calls the
// next ring member with a strictly decreasing counter, so the call graph
// gains one SCC of exactly RecDepth functions while the reference
// interpreter still terminates on any input.
func (g *gen) helper(j int, cfg Config) {
	g.w("func r%d(n, m) {", j)
	g.indent++
	g.w("var acc = m %% %d;", g.r.intn(200)+50)
	g.w("if (n > 0) {")
	g.indent++
	g.w("acc += r%d(n - 1, acc + %d);", (j+1)%cfg.RecDepth, g.r.intn(9))
	g.indent--
	g.w("}")
	g.w("if (acc > %d) {", g.r.intn(40))
	g.indent++
	g.w("return acc - %d;", g.r.intn(7))
	g.indent--
	g.w("}")
	g.w("return acc + %d;", j%13)
	g.indent--
	g.w("}")
}

// kernel emits one function f<i>(a, b): a LoopDepth-deep for nest whose
// innermost body is a chain of diamonds, with a thin call back to the
// previous kernel every fourth function. SCCWidth adds a guarded ring
// call (f<i> → next ring member, counter strictly decreasing); RecDepth
// routes every eighth kernel into the recursive helper chain; BodyStmts
// pads the innermost body with straight-line arithmetic.
func (g *gen) kernel(i int, cfg Config) {
	g.w("func f%d(a, b) {", i)
	g.indent++
	g.w("var x = a + %d;", g.r.intn(21)-10)
	g.w("var y = b - %d;", g.r.intn(11))
	if i > 0 && i%4 == 0 {
		if cfg.SCCWidth < 2 {
			g.w("y += f%d(x, %d);", i-1, g.r.intn(5))
		} else if i%cfg.SCCWidth == 0 {
			// f<i-1> sits in the previous ring: keep the entry argument
			// bounded so cross-ring recursion stays shallow at runtime.
			g.w("y += f%d(x %% 5, %d);", i-1, g.r.intn(5))
		}
		// Otherwise f<i-1> shares f<i>'s ring and the ring call below
		// already links them.
	}
	if cfg.SCCWidth >= 2 {
		g.w("if (a > %d) {", g.r.intn(2)+1)
		g.indent++
		g.w("y += f%d(a - %d, y %% %d);",
			ringNext(i, cfg.SCCWidth, cfg.Funcs), g.r.intn(2)+1, g.r.intn(63)+2)
		g.indent--
		g.w("}")
	}
	if cfg.RecDepth >= 1 && i%8 == 0 {
		g.w("y += r0(x %% %d, y);", g.r.intn(5)+3)
	}
	for d := 0; d < cfg.LoopDepth; d++ {
		g.w("for (var i%d = 0; i%d < %d; i%d += %d) {",
			d, d, g.r.intn(7)+3, d, g.r.intn(2)+1)
		g.indent++
	}
	for n := 0; n < cfg.Diamonds; n++ {
		g.diamond()
	}
	for n := 0; n < cfg.BodyStmts; n++ {
		g.filler()
	}
	g.w("x = (x %% 1024 + 1024) %% 1024;")
	for d := 0; d < cfg.LoopDepth; d++ {
		g.indent--
		g.w("}")
	}
	g.w("if (x > y) {")
	g.indent++
	g.w("return x - y;")
	g.indent--
	g.w("}")
	g.w("return y - x;")
	g.indent--
	g.w("}")
}

// EditFunc returns src with one extra statement (`y += <delta>;`)
// inserted into kernel k's body, right after its `var y = ...;` line. The
// edit changes exactly one function, so an incremental analyzer holding
// results for the unedited program should re-analyze only f<k>'s dirty
// cone. Reports false when src has no kernel k.
func EditFunc(src string, k int, delta int64) (string, bool) {
	header := fmt.Sprintf("func f%d(a, b) {\n", k)
	h := strings.Index(src, header)
	if h < 0 {
		return src, false
	}
	body := src[h+len(header):]
	y := strings.Index(body, "\tvar y = ")
	if y < 0 {
		return src, false
	}
	nl := strings.IndexByte(body[y:], '\n')
	if nl < 0 {
		return src, false
	}
	at := h + len(header) + y + nl + 1
	return src[:at] + fmt.Sprintf("\ty += %d;\n", delta) + src[at:], true
}

// Source renders the program for cfg. Same cfg, same bytes.
func Source(cfg Config) string {
	g := &gen{r: rng{s: cfg.Seed}}
	for j := 0; j < cfg.RecDepth; j++ {
		g.helper(j, cfg)
	}
	for i := 0; i < cfg.Funcs; i++ {
		g.kernel(i, cfg)
	}
	// With recursion enabled, recursion depth tracks a kernel's first
	// argument, so main passes bounded values; the accumulator t stays a
	// second argument only.
	rec := cfg.SCCWidth >= 2 || cfg.RecDepth >= 1
	g.w("func main() {")
	g.indent++
	g.w("var s = input();")
	g.w("var t = 0;")
	for i := 0; i < cfg.Funcs; i++ {
		if i%2 == 0 {
			if rec {
				g.w("t += f%d(s %% %d, t);", i, g.r.intn(9)+2)
			} else {
				g.w("t += f%d(s, t);", i)
			}
		} else {
			if rec {
				g.w("t += f%d(t %% %d, s);", i, g.r.intn(9)+2)
			} else {
				g.w("t += f%d(t, s %% %d);", i, g.r.intn(9)+2)
			}
		}
	}
	g.w("print(t);")
	g.indent--
	g.w("}")
	return g.b.String()
}
